//! The in-memory triple store: flat sorted permutation indexes for SPO and
//! OSP, a *predicate-partitioned* POS index, and zero-allocation prefix
//! scans.
//!
//! SPO and OSP are flat sorted `Vec<(u32, u32, u32)>` runs: a prefix lookup
//! is two binary searches yielding a contiguous slice, iteration is a
//! linear walk over dense memory, and exact pattern cardinalities come
//! from the same bounds in O(log n) ([`TripleStore::count_pattern`]).
//!
//! The POS permutation is different: every scan of it binds the predicate
//! (the `?x <p> ?y` / `?x <p> <o>` shapes — SOFYA's bread and butter), so
//! instead of one flat run it is partitioned into **per-predicate pages**,
//! each a sorted `Vec<(u32, u32)>` of `(o, s)` pairs. Buffer merges and
//! removals memmove only the touched predicate's page, binary searches are
//! page-local, and a predicate's cardinality is just its page length —
//! read in O(log #predicates) and fed to the query planner's selectivity
//! oracle through [`TripleStore::count_pattern`].
//!
//! Writes go through small *insert buffers* — a second sorted run per flat
//! permutation and per page — merged into the main run whenever they reach
//! the merge threshold (amortized O(1) index maintenance per insert at
//! repo scales). Reads consult both runs through a two-way merge, so
//! results are always exact regardless of pending buffered inserts;
//! [`TripleStore::flush`] compacts eagerly. Bulk ingestion should use
//! [`TripleStore::load_batch`], which appends unsorted and pays one
//! sort + dedup + merge per index for the whole batch.
//!
//! The dictionary and every main run live behind `Arc`s with
//! copy-on-write mutation (`Arc::make_mut`), so
//! [`TripleStore::snapshot`] can publish an immutable
//! [`crate::snapshot::StoreSnapshot`] by flushing and
//! cloning the `Arc`s — O(#predicates), no data copy. The single writer
//! keeps loading afterwards; the first merge or removal touching a run
//! still referenced by a live snapshot pays one copy of that run, and
//! later ones are free again.

use crate::dict::{Dict, TermId};
use crate::snapshot::StoreSnapshot;
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

type Key = (u32, u32, u32);
/// An `(o, s)` entry of one predicate's POS page.
type Pair = (u32, u32);

/// Buffered inserts per permutation before they are merged into the main
/// run. Small enough that the sorted insertion memmove stays cheap, large
/// enough that merges amortize.
const DEFAULT_MERGE_THRESHOLD: usize = 1024;

/// Per-page insert buffer bound: pages are merged independently, so the
/// buffer can stay much smaller than the global threshold without losing
/// amortization (the memmove it triggers is page-local).
const PAGE_BUFFER_THRESHOLD: usize = 64;

/// Mutations accumulated in the writer path since the last
/// [`TripleStore::take_pending_delta`]: per-predicate insert/remove
/// counts plus the set of subject/object ids touched. Maintained in
/// O(1) amortized per mutation, so draining it at publish time is
/// O(mutations since the last publish), never O(store).
#[derive(Debug, Clone, Default)]
struct PendingDelta {
    /// predicate id → (inserts, removes)
    preds: BTreeMap<u32, (u64, u64)>,
    /// Subject and object ids of every mutated triple.
    terms: BTreeSet<u32>,
}

impl PendingDelta {
    #[inline]
    fn record(&mut self, s: u32, p: u32, o: u32, removal: bool) {
        let counts = self.preds.entry(p).or_default();
        if removal {
            counts.1 += 1;
        } else {
            counts.0 += 1;
        }
        self.terms.insert(s);
        self.terms.insert(o);
    }

    fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// The drained form of the writer's pending mutation log (see
/// [`TripleStore::take_pending_delta`]): raw dictionary ids, resolvable
/// against any snapshot taken at or after the covered mutations (the
/// dictionary is append-only).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreDelta {
    /// `(predicate id, inserts, removes)`, ascending by predicate id.
    pub predicates: Vec<(TermId, u64, u64)>,
    /// Distinct subject/object ids of every mutated triple, ascending.
    pub terms: Vec<TermId>,
}

impl StoreDelta {
    /// Whether the delta covers no mutations at all.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }
}

/// Which permutation a key run is sorted by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Perm {
    /// `(s, p, o)`
    Spo,
    /// `(o, s, p)`
    Osp,
}

impl Perm {
    #[inline]
    fn decode(self, k: Key) -> Triple {
        let (a, b, c) = k;
        match self {
            Perm::Spo => Triple::new(TermId(a), TermId(b), TermId(c)),
            Perm::Osp => Triple::new(TermId(b), TermId(c), TermId(a)),
        }
    }
}

/// One predicate's slice of the POS index: sorted `(o, s)` pairs in a main
/// run plus a small sorted insert buffer.
#[derive(Debug, Clone, Default)]
struct PredPage {
    /// The predicate's id (the page key; pages are sorted by it).
    pred: u32,
    /// Main sorted run of `(o, s)` pairs, shared with live snapshots.
    run: Arc<Vec<Pair>>,
    /// Pending sorted inserts, merged into `run` on threshold or flush.
    buf: Vec<Pair>,
}

impl PredPage {
    #[inline]
    fn len(&self) -> usize {
        self.run.len() + self.buf.len()
    }
}

/// The sub-slice of a sorted run whose keys start with the given prefix.
///
/// Bound positions must form a prefix of the permutation order (`a`, then
/// `a,b`, then `a,b,c`). Implemented with `partition_point`, so there is
/// no successor arithmetic and no `u32::MAX` edge case (the old
/// `prefix_range` computed `a + 1` exclusive bounds and had to special-case
/// every saturated id).
#[inline]
fn prefix_slice(run: &[Key], a: Option<u32>, b: Option<u32>, c: Option<u32>) -> &[Key] {
    let (lo, hi) = match (a, b, c) {
        (None, _, _) => (0, run.len()),
        (Some(a), None, _) => (
            run.partition_point(|&(x, _, _)| x < a),
            run.partition_point(|&(x, _, _)| x <= a),
        ),
        (Some(a), Some(b), None) => (
            run.partition_point(|&(x, y, _)| (x, y) < (a, b)),
            run.partition_point(|&(x, y, _)| (x, y) <= (a, b)),
        ),
        (Some(a), Some(b), Some(c)) => (
            run.partition_point(|&k| k < (a, b, c)),
            run.partition_point(|&k| k <= (a, b, c)),
        ),
    };
    &run[lo..hi]
}

/// The sub-slice of a sorted pair run with first component `a` (or all).
/// `(None, Some(_))` is not a prefix and must not reach this function.
#[inline]
fn pair_prefix_slice(run: &[Pair], a: Option<u32>, b: Option<u32>) -> &[Pair] {
    let (lo, hi) = match (a, b) {
        (None, _) => {
            debug_assert!(b.is_none(), "bound second component without the first");
            (0, run.len())
        }
        (Some(a), None) => (
            run.partition_point(|&(x, _)| x < a),
            run.partition_point(|&(x, _)| x <= a),
        ),
        (Some(a), Some(b)) => (
            run.partition_point(|&k| k < (a, b)),
            run.partition_point(|&k| k <= (a, b)),
        ),
    };
    &run[lo..hi]
}

/// A zero-allocation pattern scan: a two-way sorted merge over a main
/// run's prefix slice and an insert buffer's prefix slice, decoded to
/// [`Triple`]s on the fly. For predicate-bound shapes the slices come from
/// one predicate's page (pairs `(o, s)` with the fixed predicate re-attached
/// during decoding).
///
/// Yields triples in the permutation's sort order. The length is exact
/// ([`ExactSizeIterator`]), because every pattern shape maps to pure
/// prefix ranges — no residual filtering.
#[derive(Debug, Clone)]
pub struct PatternScan<'a> {
    mode: ScanMode<'a>,
}

#[derive(Debug, Clone)]
enum ScanMode<'a> {
    /// A flat-run scan (SPO or OSP order).
    Flat {
        main: &'a [Key],
        buf: &'a [Key],
        perm: Perm,
    },
    /// One predicate's page (POS order within the page: by `(o, s)`).
    Page {
        pred: u32,
        run: &'a [Pair],
        buf: &'a [Pair],
    },
}

impl PatternScan<'_> {
    /// An always-empty scan.
    fn empty() -> PatternScan<'static> {
        PatternScan {
            mode: ScanMode::Flat {
                main: &[],
                buf: &[],
                perm: Perm::Spo,
            },
        }
    }
}

/// Pops the smaller head of two sorted slices (two-way merge step).
#[inline]
fn merge_next<'a, T: Copy + Ord>(main: &mut &'a [T], buf: &mut &'a [T]) -> Option<T> {
    let take_main = match (main.first(), buf.first()) {
        (Some(m), Some(b)) => m <= b,
        (Some(_), None) => true,
        (None, Some(_)) => false,
        (None, None) => return None,
    };
    let src = if take_main { main } else { buf };
    let k = src[0];
    *src = &src[1..];
    Some(k)
}

impl Iterator for PatternScan<'_> {
    type Item = Triple;

    #[inline]
    fn next(&mut self) -> Option<Triple> {
        match &mut self.mode {
            ScanMode::Flat { main, buf, perm } => merge_next(main, buf).map(|k| perm.decode(k)),
            ScanMode::Page { pred, run, buf } => {
                merge_next(run, buf).map(|(o, s)| Triple::new(TermId(s), TermId(*pred), TermId(o)))
            }
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }

    #[inline]
    fn count(self) -> usize {
        self.len()
    }
}

impl ExactSizeIterator for PatternScan<'_> {
    #[inline]
    fn len(&self) -> usize {
        match &self.mode {
            ScanMode::Flat { main, buf, .. } => main.len() + buf.len(),
            ScanMode::Page { run, buf, .. } => run.len() + buf.len(),
        }
    }
}

/// An in-memory, dictionary-encoded triple store.
///
/// Any triple pattern shape is answered by a contiguous prefix range on
/// one of the three permutations:
///
/// | bound          | index | prefix      |
/// |----------------|-------|-------------|
/// | `s` / `s,p` / `s,p,o` | SPO | `s` / `s,p` / `s,p,o` |
/// | `p` / `p,o`    | POS page for `p` | `·` / `o` |
/// | `o` / `o,s`    | OSP   | `o` / `o,s` |
/// | nothing        | SPO   | full run    |
///
/// The store is append-mostly (plus [`TripleStore::remove`]) and
/// single-writer; the endpoint layer wraps it for shared access. All read
/// methods take `&self` and never allocate for the scan itself.
#[derive(Debug, Clone)]
pub struct TripleStore {
    dict: Arc<Dict>,
    spo: Arc<Vec<Key>>,
    osp: Arc<Vec<Key>>,
    buf_spo: Vec<Key>,
    buf_osp: Vec<Key>,
    /// Per-predicate POS pages, sorted by predicate id.
    pages: Vec<PredPage>,
    merge_threshold: usize,
    /// Bumped on every successful mutation; snapshots record the value
    /// they were taken at, so staleness is a subtraction.
    generation: u64,
    /// Mutations since the last `take_pending_delta` (the publish-time
    /// delta feed).
    pending: PendingDelta,
}

impl Default for TripleStore {
    fn default() -> Self {
        Self {
            dict: Arc::new(Dict::new()),
            spo: Arc::new(Vec::new()),
            osp: Arc::new(Vec::new()),
            buf_spo: Vec::new(),
            buf_osp: Vec::new(),
            pages: Vec::new(),
            merge_threshold: DEFAULT_MERGE_THRESHOLD,
            generation: 0,
            pending: PendingDelta::default(),
        }
    }
}

/// Merges the sorted `buf` into the sorted `main` in place (backward
/// merge: one resize, no scratch allocation), leaving `buf` empty.
fn merge_run<T: Copy + Ord + Default>(main: &mut Vec<T>, buf: &mut Vec<T>) {
    if buf.is_empty() {
        return;
    }
    if main.is_empty() {
        std::mem::swap(main, buf);
        return;
    }
    let old = main.len();
    main.resize(old + buf.len(), T::default());
    let mut i = old; // one past the next unmerged main element
    let mut j = buf.len(); // one past the next unmerged buf element
    let mut k = main.len(); // one past the next write position
    while j > 0 {
        if i > 0 && main[i - 1] > buf[j - 1] {
            main[k - 1] = main[i - 1];
            i -= 1;
        } else {
            main[k - 1] = buf[j - 1];
            j -= 1;
        }
        k -= 1;
    }
    buf.clear();
}

/// Inserts `key` into a sorted run, preserving order. The caller
/// guarantees the key is not already present.
#[inline]
fn sorted_insert<T: Copy + Ord>(run: &mut Vec<T>, key: T) {
    let at = run.partition_point(|&k| k < key);
    run.insert(at, key);
}

/// Removes `key` from a sorted run if present; `true` on removal.
fn sorted_remove<T: Copy + Ord>(run: &mut Vec<T>, key: T) -> bool {
    match run.binary_search(&key) {
        Ok(at) => {
            run.remove(at);
            true
        }
        Err(_) => false,
    }
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Mutable access to the dictionary (to pre-intern vocabulary).
    /// Copy-on-write: if a snapshot still shares the dictionary, this
    /// clones it once before handing out the mutable reference.
    pub fn dict_mut(&mut self) -> &mut Dict {
        Arc::make_mut(&mut self.dict)
    }

    /// The mutation counter: bumped once per successful `insert`,
    /// `remove`, or non-empty `load_batch`. Snapshots record it, so
    /// `store.generation() - snapshot.version()` is the number of writes
    /// a snapshot is behind.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Publishes the current contents as an immutable, shareable
    /// [`StoreSnapshot`]: flushes the insert buffers, then clones the
    /// `Arc`s of the dictionary and every main run — O(#predicates), no
    /// triple is copied. The writer may keep mutating `self`; the first
    /// merge or removal that touches a run still shared with a live
    /// snapshot pays a one-time copy of that run (`Arc::make_mut`).
    pub fn snapshot(&mut self) -> StoreSnapshot {
        self.flush();
        let mut clone = self.clone();
        // The snapshot is immutable; carrying the writer's pending
        // mutation log into it would only pin memory.
        clone.pending = PendingDelta::default();
        StoreSnapshot::new(clone, self.generation)
    }

    /// Drains the mutation log accumulated since the previous call (or
    /// store creation): per-predicate insert/remove counts and the
    /// subject/object ids touched. O(mutations covered). The endpoint
    /// layer calls this at publish time to build the delta feed.
    pub fn take_pending_delta(&mut self) -> StoreDelta {
        let pending = std::mem::take(&mut self.pending);
        StoreDelta {
            predicates: pending
                .preds
                .into_iter()
                .map(|(p, (ins, rem))| (TermId(p), ins, rem))
                .collect(),
            terms: pending.terms.into_iter().map(TermId).collect(),
        }
    }

    /// Whether any mutation has been recorded since the last
    /// [`TripleStore::take_pending_delta`].
    pub fn has_pending_delta(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len() + self.buf_spo.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overrides the insert-buffer merge threshold (tuning / test knob).
    pub fn set_merge_threshold(&mut self, threshold: usize) {
        self.merge_threshold = threshold.max(1);
        self.maybe_merge();
    }

    /// Interns a term in this store's dictionary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        Arc::make_mut(&mut self.dict).intern(term)
    }

    /// The POS page for predicate `p`, if it exists.
    #[inline]
    fn page(&self, p: u32) -> Option<&PredPage> {
        self.pages
            .binary_search_by_key(&p, |page| page.pred)
            .ok()
            .map(|at| &self.pages[at])
    }

    /// The POS page for predicate `p`, created (empty) if absent.
    #[inline]
    fn page_mut(&mut self, p: u32) -> &mut PredPage {
        match self.pages.binary_search_by_key(&p, |page| page.pred) {
            Ok(at) => &mut self.pages[at],
            Err(at) => {
                self.pages.insert(
                    at,
                    PredPage {
                        pred: p,
                        ..PredPage::default()
                    },
                );
                &mut self.pages[at]
            }
        }
    }

    /// Inserts an encoded triple. Returns `false` if it was already present.
    pub fn insert(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let key = (s.0, p.0, o.0);
        // The dedup probe on the buffer doubles as the insertion point.
        let at = match self.buf_spo.binary_search(&key) {
            Ok(_) => return false,
            Err(at) => at,
        };
        if self.spo.binary_search(&key).is_ok() {
            return false;
        }
        self.buf_spo.insert(at, key);
        sorted_insert(&mut self.buf_osp, (o.0, s.0, p.0));
        let page = self.page_mut(p.0);
        sorted_insert(&mut page.buf, (o.0, s.0));
        if page.buf.len() >= PAGE_BUFFER_THRESHOLD {
            merge_run(Arc::make_mut(&mut page.run), &mut page.buf);
        }
        self.generation += 1;
        self.pending.record(s.0, p.0, o.0, false);
        self.maybe_merge();
        true
    }

    /// Interns the three terms and inserts the triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let dict = Arc::make_mut(&mut self.dict);
        let s = dict.intern(s);
        let p = dict.intern(p);
        let o = dict.intern(o);
        self.insert(s, p, o)
    }

    /// Bulk-loads encoded triples: appends the batch unsorted, then pays
    /// one sort + dedup + merge per index for the whole batch instead of a
    /// sorted-buffer memmove per triple. Returns the number of *new*
    /// triples inserted (duplicates within the batch and against the store
    /// are skipped).
    pub fn load_batch(
        &mut self,
        triples: impl IntoIterator<Item = (TermId, TermId, TermId)>,
    ) -> usize {
        let mut batch: Vec<Key> = triples
            .into_iter()
            .map(|(s, p, o)| (s.0, p.0, o.0))
            .collect();
        if batch.is_empty() {
            return 0;
        }
        batch.sort_unstable();
        batch.dedup();
        batch.retain(|key| {
            self.spo.binary_search(key).is_err() && self.buf_spo.binary_search(key).is_err()
        });
        if batch.is_empty() {
            return 0;
        }
        let inserted = batch.len();
        // `batch` now holds exactly the new triples.
        for &(s, p, o) in &batch {
            self.pending.record(s, p, o, false);
        }

        // SPO: the batch is already in SPO order.
        let mut spo_batch = batch.clone();
        let spo = Arc::make_mut(&mut self.spo);
        merge_run(spo, &mut self.buf_spo);
        merge_run(spo, &mut spo_batch);

        // OSP: re-key and sort once.
        let mut osp_batch: Vec<Key> = batch.iter().map(|&(s, p, o)| (o, s, p)).collect();
        osp_batch.sort_unstable();
        let osp = Arc::make_mut(&mut self.osp);
        merge_run(osp, &mut self.buf_osp);
        merge_run(osp, &mut osp_batch);

        // POS pages: sort the batch by (p, o, s) and merge each predicate's
        // contiguous sub-run into its page.
        let mut pos_batch: Vec<Key> = batch.iter().map(|&(s, p, o)| (p, o, s)).collect();
        pos_batch.sort_unstable();
        let mut start = 0;
        while start < pos_batch.len() {
            let pred = pos_batch[start].0;
            let end = start + pos_batch[start..].partition_point(|&(p, _, _)| p == pred);
            let mut pairs: Vec<Pair> = pos_batch[start..end]
                .iter()
                .map(|&(_, o, s)| (o, s))
                .collect();
            let page = self.page_mut(pred);
            let run = Arc::make_mut(&mut page.run);
            merge_run(run, &mut page.buf);
            merge_run(run, &mut pairs);
            start = end;
        }
        self.generation += 1;
        inserted
    }

    /// Interns and bulk-loads term triples (see [`TripleStore::load_batch`]).
    pub fn load_batch_terms<'t>(
        &mut self,
        triples: impl IntoIterator<Item = (&'t Term, &'t Term, &'t Term)>,
    ) -> usize {
        let dict = Arc::make_mut(&mut self.dict);
        let keys: Vec<(TermId, TermId, TermId)> = triples
            .into_iter()
            .map(|(s, p, o)| (dict.intern(s), dict.intern(p), dict.intern(o)))
            .collect();
        self.load_batch(keys)
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let key = (s.0, p.0, o.0);
        // Probe before `make_mut` so a miss never copies a shared run.
        if !sorted_remove(&mut self.buf_spo, key) {
            if self.spo.binary_search(&key).is_err() {
                return false;
            }
            sorted_remove(Arc::make_mut(&mut self.spo), key);
        }
        let osp_key = (o.0, s.0, p.0);
        if !sorted_remove(&mut self.buf_osp, osp_key) && self.osp.binary_search(&osp_key).is_ok() {
            sorted_remove(Arc::make_mut(&mut self.osp), osp_key);
        }
        // The page memmove is bounded by one predicate's cardinality.
        if let Ok(at) = self.pages.binary_search_by_key(&p.0, |page| page.pred) {
            let page = &mut self.pages[at];
            if !sorted_remove(&mut page.buf, (o.0, s.0))
                && page.run.binary_search(&(o.0, s.0)).is_ok()
            {
                sorted_remove(Arc::make_mut(&mut page.run), (o.0, s.0));
            }
        }
        self.generation += 1;
        self.pending.record(s.0, p.0, o.0, true);
        true
    }

    /// Merges pending buffered inserts into the main runs. Reads are
    /// exact either way; this only compacts (useful after a bulk load).
    pub fn flush(&mut self) {
        // Guarded so a no-op flush never copies runs shared with snapshots.
        if !self.buf_spo.is_empty() {
            merge_run(Arc::make_mut(&mut self.spo), &mut self.buf_spo);
        }
        if !self.buf_osp.is_empty() {
            merge_run(Arc::make_mut(&mut self.osp), &mut self.buf_osp);
        }
        for page in &mut self.pages {
            if !page.buf.is_empty() {
                merge_run(Arc::make_mut(&mut page.run), &mut page.buf);
            }
        }
    }

    fn maybe_merge(&mut self) {
        if self.buf_spo.len() >= self.merge_threshold {
            self.flush();
        }
    }

    /// Existence probe for a fully-bound triple.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        let key = (s.0, p.0, o.0);
        self.spo.binary_search(&key).is_ok() || self.buf_spo.binary_search(&key).is_ok()
    }

    /// Borrowed range scan for `pattern`: binary-search prefix bounds on
    /// the selected permutation (a predicate page for `p`-bound shapes),
    /// returning a zero-allocation iterator over the matching slices of
    /// the main run and the insert buffer.
    #[inline]
    pub fn scan_range(&self, pattern: TriplePattern) -> PatternScan<'_> {
        let TriplePattern { s, p, o } = pattern;
        let (s, p, o) = (s.map(|t| t.0), p.map(|t| t.0), o.map(|t| t.0));
        match (s, p, o) {
            // Predicate bound, subject free: one page answers it.
            (None, Some(p), o) => match self.page(p) {
                Some(page) => PatternScan {
                    mode: ScanMode::Page {
                        pred: p,
                        run: pair_prefix_slice(&page.run, o, None),
                        buf: pair_prefix_slice(&page.buf, o, None),
                    },
                },
                None => PatternScan::empty(),
            },
            (s, _, o) => {
                let (perm, [a, b, c]) = match (s, p, o) {
                    (Some(s), Some(p), o) => (Perm::Spo, [Some(s), Some(p), o]),
                    (Some(s), None, Some(o)) => (Perm::Osp, [Some(o), Some(s), None]),
                    (Some(s), None, None) => (Perm::Spo, [Some(s), None, None]),
                    (None, None, Some(o)) => (Perm::Osp, [Some(o), None, None]),
                    (None, None, None) => (Perm::Spo, [None, None, None]),
                    (None, Some(_), _) => unreachable!("handled by the page arm"),
                };
                let (main, buf) = match perm {
                    Perm::Spo => (&self.spo, &self.buf_spo),
                    Perm::Osp => (&self.osp, &self.buf_osp),
                };
                PatternScan {
                    mode: ScanMode::Flat {
                        main: prefix_slice(main, a, b, c),
                        buf: prefix_slice(buf, a, b, c),
                        perm,
                    },
                }
            }
        }
    }

    /// Scans all triples matching `pattern` (alias of
    /// [`TripleStore::scan_range`], kept for API continuity).
    #[inline]
    pub fn scan(&self, pattern: TriplePattern) -> PatternScan<'_> {
        self.scan_range(pattern)
    }

    /// Exact number of triples matching `pattern`: O(1) page length for a
    /// predicate pattern, O(log n) prefix bounds otherwise — no iteration.
    #[inline]
    pub fn count_pattern(&self, pattern: TriplePattern) -> usize {
        if let TriplePattern {
            s: None,
            p: Some(p),
            o: None,
        } = pattern
        {
            return self.page(p.0).map_or(0, PredPage::len);
        }
        self.scan_range(pattern).len()
    }

    /// Number of triples matching `pattern` (same as
    /// [`TripleStore::count_pattern`]).
    pub fn count(&self, pattern: TriplePattern) -> usize {
        self.count_pattern(pattern)
    }

    /// All triples with predicate `p`.
    pub fn triples_with_predicate(&self, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan_range(TriplePattern::with_p(p))
    }

    /// The `(object, subject)` pairs of predicate `p`, ascending by
    /// `(o, s)` — a direct page walk used by the statistics pass.
    pub fn predicate_pairs(&self, p: TermId) -> impl Iterator<Item = (TermId, TermId)> + '_ {
        self.scan_range(TriplePattern::with_p(p))
            .map(|t| (t.o, t.s))
    }

    /// All triples with subject `s`.
    pub fn triples_with_subject(&self, s: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan_range(TriplePattern::with_s(s))
    }

    /// All triples with object `o`.
    pub fn triples_with_object(&self, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan_range(TriplePattern::with_o(o))
    }

    /// The distinct predicates in the store, ascending by id — a walk over
    /// the page directory, O(#predicates).
    pub fn predicates(&self) -> Vec<TermId> {
        self.pages
            .iter()
            .filter(|page| page.len() > 0)
            .map(|page| TermId(page.pred))
            .collect()
    }

    /// Distinct subjects across the whole store, counted in one linear
    /// pass over the SPO order (first components of a sorted merge).
    pub fn distinct_subject_count(&self) -> usize {
        let (mut main, mut buf) = (self.spo.as_slice(), self.buf_spo.as_slice());
        let mut n = 0usize;
        let mut last = None;
        while let Some((s, _, _)) = merge_next(&mut main, &mut buf) {
            if last != Some(s) {
                n += 1;
                last = Some(s);
            }
        }
        n
    }

    /// Distinct objects across the whole store, counted in one linear pass
    /// over the OSP order.
    pub fn distinct_object_count(&self) -> usize {
        let (mut main, mut buf) = (self.osp.as_slice(), self.buf_osp.as_slice());
        let mut n = 0usize;
        let mut last = None;
        while let Some((o, _, _)) = merge_next(&mut main, &mut buf) {
            if last != Some(o) {
                n += 1;
                last = Some(o);
            }
        }
        n
    }

    /// Distinct subjects of predicate `p`, ascending by id.
    pub fn subjects_of(&self, p: TermId) -> Vec<TermId> {
        let mut subjects: Vec<u32> = self.triples_with_predicate(p).map(|t| t.s.0).collect();
        subjects.sort_unstable();
        subjects.dedup();
        subjects.into_iter().map(TermId).collect()
    }

    /// Distinct objects of predicate `p`, ascending by id. The page is
    /// sorted by object, so this is a linear dedup walk.
    pub fn objects_of(&self, p: TermId) -> Vec<TermId> {
        let mut objects = Vec::new();
        let mut last = None;
        for (o, _) in self.predicate_pairs(p) {
            if last != Some(o) {
                objects.push(o);
                last = Some(o);
            }
        }
        objects
    }

    /// Objects `y` with `p(x, y)` for the given subject.
    pub fn objects_for(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.scan_range(TriplePattern::with_sp(s, p))
            .map(|t| t.o)
            .collect()
    }

    /// Subjects `x` with `p(x, y)` for the given object.
    pub fn subjects_for(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.scan_range(TriplePattern::with_po(p, o))
            .map(|t| t.s)
            .collect()
    }

    /// Distinct predicates `p` such that `p(s, ·)` exists.
    pub fn predicates_of_subject(&self, s: TermId) -> Vec<TermId> {
        let mut preds: Vec<u32> = self.triples_with_subject(s).map(|t| t.p.0).collect();
        preds.sort_unstable();
        preds.dedup();
        preds.into_iter().map(TermId).collect()
    }

    /// Resolves a triple back to terms (for display / serialisation).
    pub fn resolve(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.resolve(t.s),
            self.dict.resolve(t.p),
            self.dict.resolve(t.o),
        )
    }

    /// Iterates over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.scan_range(TriplePattern::any())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn store_with(facts: &[(&str, &str, &str)]) -> TripleStore {
        let mut s = TripleStore::new();
        for (a, b, c) in facts {
            s.insert_terms(&Term::iri(*a), &Term::iri(*b), &Term::iri(*c));
        }
        s
    }

    #[test]
    fn insert_is_deduplicating() {
        let mut s = TripleStore::new();
        assert!(s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert!(!s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_dedup_across_merge_boundary() {
        let mut s = TripleStore::new();
        s.set_merge_threshold(2);
        assert!(s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert!(s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("c")));
        // First triple now lives in the main run; duplicate must be caught.
        assert!(!s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut s = store_with(&[("a", "p", "b")]);
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.remove(a, p, b));
        assert!(!s.remove(a, p, b));
        assert_eq!(s.len(), 0);
        assert_eq!(s.count(TriplePattern::with_p(p)), 0);
        assert_eq!(s.count(TriplePattern::with_o(b)), 0);
    }

    #[test]
    fn remove_from_main_run_after_flush() {
        let mut s = store_with(&[("a", "p", "b"), ("a", "p", "c"), ("b", "q", "a")]);
        s.flush();
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.remove(a, p, b));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(a, p, b));
        assert_eq!(s.count(TriplePattern::with_sp(a, p)), 1);
        // Reinsertion after a main-run removal works (goes to the buffer).
        assert!(s.insert(a, p, b));
        assert!(s.contains(a, p, b));
    }

    #[test]
    fn scan_each_pattern_shape_agrees_with_filtering() {
        let s = store_with(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
        ]);
        let ids: Vec<TermId> = ["a", "b", "c", "p", "q"]
            .iter()
            .map(|n| s.dict().lookup_iri(n).unwrap())
            .collect();
        let (a, b, c, p, q) = (ids[0], ids[1], ids[2], ids[3], ids[4]);

        let all: Vec<Triple> = s.iter().collect();
        let shapes = vec![
            TriplePattern::any(),
            TriplePattern::with_s(a),
            TriplePattern::with_p(p),
            TriplePattern::with_o(b),
            TriplePattern::with_sp(a, p),
            TriplePattern::with_po(q, b),
            TriplePattern::with_so(a, c),
            TriplePattern::exact(b, p, c),
            TriplePattern::exact(b, p, b),
        ];
        for pat in shapes {
            let scanned: BTreeSet<Triple> = s.scan(pat).collect();
            let filtered: BTreeSet<Triple> =
                all.iter().copied().filter(|t| pat.matches(t)).collect();
            assert_eq!(scanned, filtered, "pattern {pat:?}");
            assert_eq!(s.count_pattern(pat), filtered.len(), "count {pat:?}");
            assert_eq!(s.scan(pat).len(), filtered.len(), "exact size {pat:?}");
        }
        let _ = c;
    }

    /// `count_pattern` against brute-force counts over every shape, with a
    /// split main-run/buffer state (threshold forces partial merges).
    #[test]
    fn count_pattern_matches_brute_force_across_runs() {
        let mut s = TripleStore::new();
        s.set_merge_threshold(8);
        // A deterministic pseudo-random fact mix with duplicates.
        let mut x: u32 = 7;
        let mut facts = Vec::new();
        for _ in 0..200 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let sid = (x >> 3) % 13;
            let pid = (x >> 9) % 5;
            let oid = (x >> 16) % 11;
            facts.push((format!("s{sid}"), format!("p{pid}"), format!("o{oid}")));
        }
        for (a, b, c) in &facts {
            s.insert_terms(
                &Term::iri(a.clone()),
                &Term::iri(b.clone()),
                &Term::iri(c.clone()),
            );
        }
        let all: Vec<Triple> = s.iter().collect();
        assert_eq!(all.len(), s.len());

        let ids: Vec<Option<TermId>> = (0..14)
            .map(|i| s.dict().lookup_iri(&format!("s{i}")))
            .collect();
        let pids: Vec<Option<TermId>> = (0..6)
            .map(|i| s.dict().lookup_iri(&format!("p{i}")))
            .collect();
        let oids: Vec<Option<TermId>> = (0..12)
            .map(|i| s.dict().lookup_iri(&format!("o{i}")))
            .collect();
        for &sid in ids.iter().chain([None].iter()) {
            for &pid in pids.iter().chain([None].iter()) {
                for &oid in oids.iter().chain([None].iter()) {
                    let pat = TriplePattern {
                        s: sid,
                        p: pid,
                        o: oid,
                    };
                    let brute = all.iter().filter(|t| pat.matches(t)).count();
                    assert_eq!(s.count_pattern(pat), brute, "pattern {pat:?}");
                }
            }
        }
    }

    /// Insert-buffer merge around duplicates and removed triples: the
    /// store must agree with a BTreeSet model under a mixed op sequence
    /// that repeatedly crosses the merge threshold.
    #[test]
    fn buffer_merge_agrees_with_set_model() {
        let mut s = TripleStore::new();
        s.set_merge_threshold(4);
        let mut model: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
        let mut x: u32 = 99;
        for step in 0..600 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let sid = s.intern(&Term::iri(format!("s{}", (x >> 3) % 9)));
            let pid = s.intern(&Term::iri(format!("p{}", (x >> 9) % 4)));
            let oid = s.intern(&Term::iri(format!("o{}", (x >> 16) % 9)));
            if step % 5 == 4 {
                let was = s.remove(sid, pid, oid);
                assert_eq!(was, model.remove(&(sid.0, pid.0, oid.0)), "step {step}");
            } else {
                let fresh = s.insert(sid, pid, oid);
                assert_eq!(fresh, model.insert((sid.0, pid.0, oid.0)), "step {step}");
            }
            assert_eq!(s.len(), model.len(), "step {step}");
        }
        let scanned: BTreeSet<(u32, u32, u32)> = s.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        assert_eq!(scanned, model);
        // Spot-check pattern counts after the churn.
        for p in s.predicates() {
            let brute = model.iter().filter(|&&(_, kp, _)| kp == p.0).count();
            assert_eq!(s.count_pattern(TriplePattern::with_p(p)), brute);
        }
        s.flush();
        let scanned: BTreeSet<(u32, u32, u32)> = s.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        assert_eq!(scanned, model);
    }

    #[test]
    fn load_batch_agrees_with_incremental_inserts() {
        let mut incremental = TripleStore::new();
        let mut batched = TripleStore::new();
        let mut x: u32 = 5;
        let mut batch = Vec::new();
        for _ in 0..400 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let (si, pi, oi) = ((x >> 3) % 17, (x >> 9) % 6, (x >> 16) % 13);
            let (s, p, o) = (
                Term::iri(format!("s{si}")),
                Term::iri(format!("p{pi}")),
                Term::iri(format!("o{oi}")),
            );
            incremental.insert_terms(&s, &p, &o);
            let key = (batched.intern(&s), batched.intern(&p), batched.intern(&o));
            batch.push(key);
        }
        let inserted = batched.load_batch(batch.clone());
        assert_eq!(inserted, incremental.len());
        assert_eq!(batched.len(), incremental.len());
        // Re-loading the same batch inserts nothing.
        assert_eq!(batched.load_batch(batch), 0);
        let a: Vec<(u32, u32, u32)> = incremental.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        let b: Vec<(u32, u32, u32)> = batched.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        assert_eq!(a, b);
        // Per-pattern agreement on every predicate.
        for p in incremental.predicates() {
            assert_eq!(
                batched.count_pattern(TriplePattern::with_p(p)),
                incremental.count_pattern(TriplePattern::with_p(p))
            );
        }
    }

    #[test]
    fn load_batch_onto_populated_store_dedups_and_merges() {
        let mut s = store_with(&[("a", "p", "b"), ("c", "q", "d")]);
        let keys = [
            ("a", "p", "b"), // duplicate of existing
            ("a", "p", "z"),
            ("e", "r", "f"),
            ("e", "r", "f"), // in-batch duplicate
        ]
        .map(|(a, b, c)| {
            (
                s.intern(&Term::iri(a)),
                s.intern(&Term::iri(b)),
                s.intern(&Term::iri(c)),
            )
        });
        assert_eq!(s.load_batch(keys), 2);
        assert_eq!(s.len(), 4);
        let p = s.dict().lookup_iri("p").unwrap();
        let r = s.dict().lookup_iri("r").unwrap();
        assert_eq!(s.count_pattern(TriplePattern::with_p(p)), 2);
        assert_eq!(s.count_pattern(TriplePattern::with_p(r)), 1);
    }

    #[test]
    fn scan_is_sorted_in_permutation_order_across_runs() {
        let mut s = TripleStore::new();
        s.set_merge_threshold(3);
        for i in [5u32, 1, 9, 3, 7, 2, 8] {
            s.insert_terms(
                &Term::iri(format!("s{i}")),
                &Term::iri("p"),
                &Term::iri(format!("o{i}")),
            );
        }
        let keys: Vec<(u32, u32, u32)> = s.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "SPO order: {keys:?}");
        // POS page order: by (o, s) within the single predicate.
        let p = s.dict().lookup_iri("p").unwrap();
        let pairs: Vec<(u32, u32)> = s.predicate_pairs(p).map(|(o, su)| (o.0, su.0)).collect();
        assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "page order: {pairs:?}"
        );
    }

    #[test]
    fn predicates_are_distinct_and_sorted() {
        let s = store_with(&[("a", "p", "b"), ("b", "p", "c"), ("a", "q", "b")]);
        let preds = s.predicates();
        assert_eq!(preds.len(), 2);
        assert!(preds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn emptied_page_is_not_reported_as_predicate() {
        let mut s = store_with(&[("a", "p", "b"), ("a", "q", "c")]);
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.remove(a, p, b));
        assert_eq!(s.predicates().len(), 1);
        assert_eq!(s.count_pattern(TriplePattern::with_p(p)), 0);
    }

    #[test]
    fn subjects_objects_helpers() {
        let s = store_with(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("a", "q", "d"),
        ]);
        let p = s.dict().lookup_iri("p").unwrap();
        let a = s.dict().lookup_iri("a").unwrap();
        assert_eq!(s.subjects_of(p).len(), 2);
        assert_eq!(s.objects_of(p).len(), 2);
        assert_eq!(s.objects_for(a, p).len(), 2);
        assert_eq!(s.predicates_of_subject(a).len(), 2);
    }

    #[test]
    fn store_level_distinct_counts_match_sets() {
        let mut s = TripleStore::new();
        s.set_merge_threshold(4);
        let mut x: u32 = 3;
        let mut subjects = BTreeSet::new();
        let mut objects = BTreeSet::new();
        for _ in 0..100 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let (si, pi, oi) = ((x >> 3) % 11, (x >> 9) % 3, (x >> 16) % 7);
            let sid = s.intern(&Term::iri(format!("s{si}")));
            let pid = s.intern(&Term::iri(format!("p{pi}")));
            let oid = s.intern(&Term::iri(format!("o{oi}")));
            if s.insert(sid, pid, oid) {
                subjects.insert(sid.0);
                objects.insert(oid.0);
            }
        }
        assert_eq!(s.distinct_subject_count(), subjects.len());
        assert_eq!(s.distinct_object_count(), objects.len());
    }

    #[test]
    fn contains_probe() {
        let s = store_with(&[("a", "p", "b")]);
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.contains(a, p, b));
        assert!(!s.contains(b, p, a));
    }

    /// Regression guard for the old `prefix_range` successor arithmetic:
    /// a dictionary larger than `u16::MAX` terms probed at its maximum
    /// assigned id, and raw probes at `u32::MAX`, must neither panic nor
    /// miss triples.
    #[test]
    fn prefix_bounds_handle_max_ids() {
        let mut s = TripleStore::new();
        // Intern more than u16::MAX terms so ids outgrow 16 bits.
        let n = u32::from(u16::MAX) + 5;
        for i in 0..n {
            s.dict_mut().intern(&Term::iri(format!("filler{i}")));
        }
        let p = s.intern(&Term::iri("p"));
        let max_s = s.intern(&Term::iri("subject-with-max-id"));
        assert!(max_s.0 > u32::from(u16::MAX));
        let o = s.intern(&Term::iri("object"));
        s.insert(max_s, p, o);

        // The highest assigned ids appear in every position.
        assert_eq!(s.count_pattern(TriplePattern::with_s(max_s)), 1);
        assert_eq!(s.count_pattern(TriplePattern::with_sp(max_s, p)), 1);
        assert_eq!(s.count_pattern(TriplePattern::with_so(max_s, o)), 1);
        assert_eq!(s.count_pattern(TriplePattern::exact(max_s, p, o)), 1);
        assert_eq!(s.scan(TriplePattern::with_s(max_s)).count(), 1);

        // Saturated raw ids (foreign to the dictionary) are safe probes.
        let max = TermId(u32::MAX);
        assert_eq!(s.count_pattern(TriplePattern::with_s(max)), 0);
        assert_eq!(s.count_pattern(TriplePattern::with_sp(max, max)), 0);
        assert_eq!(s.count_pattern(TriplePattern::exact(max, max, max)), 0);
        assert_eq!(s.scan(TriplePattern::with_o(max)).count(), 0);
        assert_eq!(s.scan(TriplePattern::with_p(max)).count(), 0);
        assert_eq!(s.count_pattern(TriplePattern::with_po(max, max)), 0);
        assert!(!s.contains(max, max, max));
    }

    #[test]
    fn flush_is_idempotent_and_preserves_content() {
        let mut s = store_with(&[("a", "p", "b"), ("b", "p", "c")]);
        let before: Vec<Triple> = s.iter().collect();
        s.flush();
        s.flush();
        let after: Vec<Triple> = s.iter().collect();
        assert_eq!(before, after);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pending_delta_tracks_mutations_exactly() {
        let mut s = TripleStore::new();
        assert!(!s.has_pending_delta());
        assert!(s.take_pending_delta().is_empty());

        let a = s.intern(&Term::iri("a"));
        let b = s.intern(&Term::iri("b"));
        let c = s.intern(&Term::iri("c"));
        let p = s.intern(&Term::iri("p"));
        let q = s.intern(&Term::iri("q"));

        assert!(s.insert(a, p, b));
        assert!(!s.insert(a, p, b)); // duplicate: not recorded
        assert!(!s.remove(a, q, b)); // miss: not recorded
        s.load_batch(vec![(a, p, b), (b, q, c)]); // one new triple
        assert!(s.remove(a, p, b));

        assert!(s.has_pending_delta());
        let delta = s.take_pending_delta();
        assert_eq!(
            delta.predicates,
            vec![(p, 1, 1), (q, 1, 0)],
            "per-predicate insert/remove counts"
        );
        let terms: BTreeSet<TermId> = delta.terms.iter().copied().collect();
        assert_eq!(terms, BTreeSet::from([a, b, c]));

        // Drained: the next delta starts empty.
        assert!(!s.has_pending_delta());
        assert!(s.take_pending_delta().is_empty());

        // Snapshots never carry the writer's pending log.
        assert!(s.insert(b, p, c));
        let snap = s.snapshot();
        assert!(!snap.store().has_pending_delta());
        assert!(s.has_pending_delta());
    }

    #[test]
    fn resolve_round_trips_terms() {
        let mut s = TripleStore::new();
        s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::literal("v"));
        let t = s.iter().next().unwrap();
        let (a, p, v) = s.resolve(t);
        assert_eq!(a, &Term::iri("a"));
        assert_eq!(p, &Term::iri("p"));
        assert_eq!(v, &Term::literal("v"));
    }
}
