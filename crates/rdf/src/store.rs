//! The in-memory triple store with three permutation indexes.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::dict::{Dict, TermId};
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};

type Key = (u32, u32, u32);

/// An in-memory, dictionary-encoded triple store.
///
/// Three sorted permutation indexes (SPO, POS, OSP) guarantee that any
/// triple pattern with at least one bound position is answered by a
/// contiguous range scan; the fully-unbound pattern scans SPO.
///
/// The store is append-only (plus [`TripleStore::remove`]) and
/// single-writer; the endpoint layer wraps it for shared access.
#[derive(Debug, Default, Clone)]
pub struct TripleStore {
    dict: Dict,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
}

/// Builds the `(Bound, Bound)` range covering all keys with prefix `a`
/// (and optionally `a, b`).
fn prefix_range(a: u32, b: Option<u32>) -> (Bound<Key>, Bound<Key>) {
    match b {
        None => {
            let lo = Bound::Included((a, 0, 0));
            let hi = if a == u32::MAX {
                Bound::Unbounded
            } else {
                Bound::Excluded((a + 1, 0, 0))
            };
            (lo, hi)
        }
        Some(b) => {
            let lo = Bound::Included((a, b, 0));
            let hi = if b == u32::MAX {
                if a == u32::MAX {
                    Bound::Unbounded
                } else {
                    Bound::Excluded((a + 1, 0, 0))
                }
            } else {
                Bound::Excluded((a, b + 1, 0))
            };
            (lo, hi)
        }
    }
}

impl TripleStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dict {
        &self.dict
    }

    /// Mutable access to the dictionary (to pre-intern vocabulary).
    pub fn dict_mut(&mut self) -> &mut Dict {
        &mut self.dict
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// Whether the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// Interns a term in this store's dictionary.
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Inserts an encoded triple. Returns `false` if it was already present.
    pub fn insert(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let fresh = self.spo.insert((s.0, p.0, o.0));
        if fresh {
            self.pos.insert((p.0, o.0, s.0));
            self.osp.insert((o.0, s.0, p.0));
        }
        fresh
    }

    /// Interns the three terms and inserts the triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let s = self.dict.intern(s);
        let p = self.dict.intern(p);
        let o = self.dict.intern(o);
        self.insert(s, p, o)
    }

    /// Removes a triple. Returns `true` if it was present.
    pub fn remove(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        let was = self.spo.remove(&(s.0, p.0, o.0));
        if was {
            self.pos.remove(&(p.0, o.0, s.0));
            self.osp.remove(&(o.0, s.0, p.0));
        }
        was
    }

    /// Existence probe for a fully-bound triple.
    pub fn contains(&self, s: TermId, p: TermId, o: TermId) -> bool {
        self.spo.contains(&(s.0, p.0, o.0))
    }

    /// Scans all triples matching `pattern`.
    ///
    /// Index selection:
    /// * subject bound → SPO (prefix `s` or `s,p`),
    /// * else predicate bound → POS (prefix `p` or `p,o`),
    /// * else object bound → OSP (prefix `o`),
    /// * nothing bound → full SPO scan.
    pub fn scan(&self, pattern: TriplePattern) -> Box<dyn Iterator<Item = Triple> + '_> {
        let TriplePattern { s, p, o } = pattern;
        match (s, p, o) {
            (Some(s), p, o) => {
                let range = prefix_range(s.0, p.map(|p| p.0));
                Box::new(self.spo.range(range).filter_map(move |&(ks, kp, ko)| {
                    let t = Triple::new(TermId(ks), TermId(kp), TermId(ko));
                    (o.is_none_or(|o| o.0 == ko)).then_some(t)
                }))
            }
            (None, Some(p), o) => {
                let range = prefix_range(p.0, o.map(|o| o.0));
                Box::new(
                    self.pos
                        .range(range)
                        .map(|&(kp, ko, ks)| Triple::new(TermId(ks), TermId(kp), TermId(ko))),
                )
            }
            (None, None, Some(o)) => {
                let range = prefix_range(o.0, None);
                Box::new(
                    self.osp
                        .range(range)
                        .map(|&(ko, ks, kp)| Triple::new(TermId(ks), TermId(kp), TermId(ko))),
                )
            }
            (None, None, None) => Box::new(
                self.spo
                    .iter()
                    .map(|&(ks, kp, ko)| Triple::new(TermId(ks), TermId(kp), TermId(ko))),
            ),
        }
    }

    /// Number of triples matching `pattern` (computed by scanning).
    pub fn count(&self, pattern: TriplePattern) -> usize {
        self.scan(pattern).count()
    }

    /// All triples with predicate `p`.
    pub fn triples_with_predicate(&self, p: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan(TriplePattern::with_p(p))
    }

    /// All triples with subject `s`.
    pub fn triples_with_subject(&self, s: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan(TriplePattern::with_s(s))
    }

    /// All triples with object `o`.
    pub fn triples_with_object(&self, o: TermId) -> impl Iterator<Item = Triple> + '_ {
        self.scan(TriplePattern::with_o(o))
    }

    /// The distinct predicates in the store, ascending by id.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last: Option<u32> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(TermId(p));
                last = Some(p);
            }
        }
        out
    }

    /// Distinct subjects of predicate `p`, ascending by id.
    pub fn subjects_of(&self, p: TermId) -> Vec<TermId> {
        let subjects: BTreeSet<u32> = self.triples_with_predicate(p).map(|t| t.s.0).collect();
        subjects.into_iter().map(TermId).collect()
    }

    /// Distinct objects of predicate `p`, ascending by id.
    pub fn objects_of(&self, p: TermId) -> Vec<TermId> {
        let objects: BTreeSet<u32> = self.triples_with_predicate(p).map(|t| t.o.0).collect();
        objects.into_iter().map(TermId).collect()
    }

    /// Objects `y` with `p(x, y)` for the given subject.
    pub fn objects_for(&self, s: TermId, p: TermId) -> Vec<TermId> {
        self.scan(TriplePattern::with_sp(s, p))
            .map(|t| t.o)
            .collect()
    }

    /// Subjects `x` with `p(x, y)` for the given object.
    pub fn subjects_for(&self, p: TermId, o: TermId) -> Vec<TermId> {
        self.scan(TriplePattern::with_po(p, o))
            .map(|t| t.s)
            .collect()
    }

    /// Distinct predicates `p` such that `p(s, ·)` exists.
    pub fn predicates_of_subject(&self, s: TermId) -> Vec<TermId> {
        let preds: BTreeSet<u32> = self.triples_with_subject(s).map(|t| t.p.0).collect();
        preds.into_iter().map(TermId).collect()
    }

    /// Resolves a triple back to terms (for display / serialisation).
    pub fn resolve(&self, t: Triple) -> (&Term, &Term, &Term) {
        (
            self.dict.resolve(t.s),
            self.dict.resolve(t.p),
            self.dict.resolve(t.o),
        )
    }

    /// Iterates over all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.scan(TriplePattern::any())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(facts: &[(&str, &str, &str)]) -> TripleStore {
        let mut s = TripleStore::new();
        for (a, b, c) in facts {
            s.insert_terms(&Term::iri(*a), &Term::iri(*b), &Term::iri(*c));
        }
        s
    }

    #[test]
    fn insert_is_deduplicating() {
        let mut s = TripleStore::new();
        assert!(s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert!(!s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b")));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut s = store_with(&[("a", "p", "b")]);
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.remove(a, p, b));
        assert!(!s.remove(a, p, b));
        assert_eq!(s.len(), 0);
        assert_eq!(s.count(TriplePattern::with_p(p)), 0);
        assert_eq!(s.count(TriplePattern::with_o(b)), 0);
    }

    #[test]
    fn scan_each_pattern_shape_agrees_with_filtering() {
        let s = store_with(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("a", "q", "b"),
            ("b", "p", "c"),
            ("c", "q", "a"),
        ]);
        let ids: Vec<TermId> = ["a", "b", "c", "p", "q"]
            .iter()
            .map(|n| s.dict().lookup_iri(n).unwrap())
            .collect();
        let (a, b, c, p, q) = (ids[0], ids[1], ids[2], ids[3], ids[4]);

        let all: Vec<Triple> = s.iter().collect();
        let shapes = vec![
            TriplePattern::any(),
            TriplePattern::with_s(a),
            TriplePattern::with_p(p),
            TriplePattern::with_o(b),
            TriplePattern::with_sp(a, p),
            TriplePattern::with_po(q, b),
            TriplePattern::with_so(a, c),
            TriplePattern::exact(b, p, c),
            TriplePattern::exact(b, p, b),
        ];
        for pat in shapes {
            let scanned: BTreeSet<Triple> = s.scan(pat).collect();
            let filtered: BTreeSet<Triple> =
                all.iter().copied().filter(|t| pat.matches(t)).collect();
            assert_eq!(scanned, filtered, "pattern {pat:?}");
        }
        let _ = c;
    }

    #[test]
    fn predicates_are_distinct_and_sorted() {
        let s = store_with(&[("a", "p", "b"), ("b", "p", "c"), ("a", "q", "b")]);
        let preds = s.predicates();
        assert_eq!(preds.len(), 2);
        assert!(preds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn subjects_objects_helpers() {
        let s = store_with(&[
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "p", "c"),
            ("a", "q", "d"),
        ]);
        let p = s.dict().lookup_iri("p").unwrap();
        let a = s.dict().lookup_iri("a").unwrap();
        assert_eq!(s.subjects_of(p).len(), 2);
        assert_eq!(s.objects_of(p).len(), 2);
        assert_eq!(s.objects_for(a, p).len(), 2);
        assert_eq!(s.predicates_of_subject(a).len(), 2);
    }

    #[test]
    fn contains_probe() {
        let s = store_with(&[("a", "p", "b")]);
        let (a, p, b) = (
            s.dict().lookup_iri("a").unwrap(),
            s.dict().lookup_iri("p").unwrap(),
            s.dict().lookup_iri("b").unwrap(),
        );
        assert!(s.contains(a, p, b));
        assert!(!s.contains(b, p, a));
    }

    #[test]
    fn prefix_range_handles_max_ids() {
        // Regression guard for overflow at u32::MAX boundaries.
        let (lo, hi) = prefix_range(u32::MAX, None);
        assert_eq!(lo, Bound::Included((u32::MAX, 0, 0)));
        assert_eq!(hi, Bound::Unbounded);
        let (_, hi) = prefix_range(u32::MAX, Some(u32::MAX));
        assert_eq!(hi, Bound::Unbounded);
        let (_, hi) = prefix_range(3, Some(u32::MAX));
        assert_eq!(hi, Bound::Excluded((4, 0, 0)));
    }

    #[test]
    fn resolve_round_trips_terms() {
        let mut s = TripleStore::new();
        s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::literal("v"));
        let t = s.iter().next().unwrap();
        let (a, p, v) = s.resolve(t);
        assert_eq!(a, &Term::iri("a"));
        assert_eq!(p, &Term::iri("p"));
        assert_eq!(v, &Term::literal("v"));
    }
}
