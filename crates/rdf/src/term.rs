//! RDF terms: IRIs, literals, and blank nodes.

use std::fmt;

/// An RDF term.
///
/// Literals carry an optional language tag or datatype IRI. Plain literals
/// (`datatype == None`, `lang == None`) are treated as `xsd:string`, which is
/// the behaviour mandated by RDF 1.1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A literal with lexical form and optional annotation.
    Literal {
        /// The lexical form (the string between the quotes).
        lexical: String,
        /// Language tag (`"en"`, `"fr"`, …), mutually exclusive with `datatype`.
        lang: Option<String>,
        /// Datatype IRI, e.g. `http://www.w3.org/2001/XMLSchema#integer`.
        datatype: Option<String>,
    },
    /// A blank node with its local label (without the `_:` prefix).
    BNode(String),
}

impl Term {
    /// Builds an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Builds a plain (string) literal.
    pub fn literal(lexical: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: None,
        }
    }

    /// Builds a language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: Some(lang.into()),
            datatype: None,
        }
    }

    /// Builds a typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Term::Literal {
            lexical: lexical.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// Builds an integer literal typed as `xsd:integer`.
    pub fn integer(value: i64) -> Self {
        Term::typed_literal(
            value.to_string(),
            "http://www.w3.org/2001/XMLSchema#integer",
        )
    }

    /// Builds a blank node.
    pub fn bnode(label: impl Into<String>) -> Self {
        Term::BNode(label.into())
    }

    /// Returns `true` for [`Term::Iri`].
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// Returns `true` for [`Term::Literal`].
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// Returns `true` for [`Term::BNode`].
    pub fn is_bnode(&self) -> bool {
        matches!(self, Term::BNode(_))
    }

    /// The IRI value, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(v) => Some(v),
            _ => None,
        }
    }

    /// The lexical form, if this term is a literal.
    pub fn as_literal(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// The local name of an IRI: everything after the last `#` or `/`.
    ///
    /// Returns the whole IRI when no separator is present; `None` for
    /// non-IRI terms.
    pub fn local_name(&self) -> Option<&str> {
        let iri = self.as_iri()?;
        Some(match iri.rfind(['#', '/']) {
            Some(pos) => &iri[pos + 1..],
            None => iri,
        })
    }

    /// Parses an integer value out of a numeric literal.
    pub fn integer_value(&self) -> Option<i64> {
        self.as_literal()?.parse().ok()
    }
}

impl fmt::Display for Term {
    /// Formats the term in N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::Literal {
                lexical,
                lang,
                datatype,
            } => {
                write!(f, "\"{}\"", escape_literal(lexical))?;
                if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                } else if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                }
                Ok(())
            }
            Term::BNode(label) => write!(f, "_:{label}"),
        }
    }
}

/// Escapes a literal lexical form for N-Triples output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape_literal`].
pub fn unescape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kind_predicates() {
        assert!(Term::iri("http://x/a").is_iri());
        assert!(Term::literal("abc").is_literal());
        assert!(Term::bnode("b1").is_bnode());
        assert!(!Term::literal("abc").is_iri());
    }

    #[test]
    fn as_iri_and_as_literal() {
        assert_eq!(Term::iri("http://x/a").as_iri(), Some("http://x/a"));
        assert_eq!(Term::iri("http://x/a").as_literal(), None);
        assert_eq!(Term::literal("v").as_literal(), Some("v"));
        assert_eq!(Term::literal("v").as_iri(), None);
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(
            Term::iri("http://kb/ont#wasBornIn").local_name(),
            Some("wasBornIn")
        );
        assert_eq!(
            Term::iri("http://kb/wasBornIn").local_name(),
            Some("wasBornIn")
        );
        assert_eq!(Term::iri("wasBornIn").local_name(), Some("wasBornIn"));
        assert_eq!(Term::literal("x").local_name(), None);
    }

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::literal("hello").to_string(), "\"hello\"");
    }

    #[test]
    fn display_lang_literal() {
        assert_eq!(
            Term::lang_literal("bonjour", "fr").to_string(),
            "\"bonjour\"@fr"
        );
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::integer(42).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn display_bnode() {
        assert_eq!(Term::bnode("b0").to_string(), "_:b0");
    }

    #[test]
    fn integer_round_trip() {
        assert_eq!(Term::integer(-7).integer_value(), Some(-7));
        assert_eq!(Term::literal("not a number").integer_value(), None);
    }

    #[test]
    fn escape_and_unescape_round_trip() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash\r";
        assert_eq!(unescape_literal(&escape_literal(nasty)), nasty);
    }

    #[test]
    fn unescape_tolerates_unknown_escapes() {
        assert_eq!(unescape_literal("a\\qb"), "a\\qb");
        assert_eq!(unescape_literal("trailing\\"), "trailing\\");
    }

    #[test]
    fn term_ordering_is_total() {
        let mut terms = vec![
            Term::literal("b"),
            Term::iri("a"),
            Term::bnode("c"),
            Term::literal("a"),
        ];
        terms.sort();
        // Sorting must not panic and must be deterministic.
        let again = {
            let mut t = terms.clone();
            t.sort();
            t
        };
        assert_eq!(terms, again);
    }
}
