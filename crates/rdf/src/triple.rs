//! Encoded triples and triple patterns.

use crate::dict::TermId;

/// A dictionary-encoded RDF triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject term id.
    pub s: TermId,
    /// Predicate term id.
    pub p: TermId,
    /// Object term id.
    pub o: TermId,
}

impl Triple {
    /// Builds a triple from its three components.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Self { s, p, o }
    }
}

/// A triple pattern: each position is either bound to a term id or a
/// wildcard (`None`).
///
/// Patterns drive the store's index selection: the set of bound positions
/// determines which permutation index gives a contiguous range scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// The fully unbound pattern, matching every triple.
    pub fn any() -> Self {
        Self::default()
    }

    /// Pattern with only the subject bound.
    pub fn with_s(s: TermId) -> Self {
        Self {
            s: Some(s),
            ..Self::default()
        }
    }

    /// Pattern with only the predicate bound.
    pub fn with_p(p: TermId) -> Self {
        Self {
            p: Some(p),
            ..Self::default()
        }
    }

    /// Pattern with only the object bound.
    pub fn with_o(o: TermId) -> Self {
        Self {
            o: Some(o),
            ..Self::default()
        }
    }

    /// Pattern with subject and predicate bound.
    pub fn with_sp(s: TermId, p: TermId) -> Self {
        Self {
            s: Some(s),
            p: Some(p),
            o: None,
        }
    }

    /// Pattern with predicate and object bound.
    pub fn with_po(p: TermId, o: TermId) -> Self {
        Self {
            s: None,
            p: Some(p),
            o: Some(o),
        }
    }

    /// Pattern with subject and object bound.
    pub fn with_so(s: TermId, o: TermId) -> Self {
        Self {
            s: Some(s),
            p: None,
            o: Some(o),
        }
    }

    /// Fully-bound pattern (an existence probe).
    pub fn exact(s: TermId, p: TermId, o: TermId) -> Self {
        Self {
            s: Some(s),
            p: Some(p),
            o: Some(o),
        }
    }

    /// Number of bound positions (0–3).
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_some())
            + usize::from(self.p.is_some())
            + usize::from(self.o.is_some())
    }

    /// Whether `t` satisfies every bound position of the pattern.
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> TermId {
        TermId(n)
    }

    #[test]
    fn bound_count_for_each_shape() {
        assert_eq!(TriplePattern::any().bound_count(), 0);
        assert_eq!(TriplePattern::with_p(id(1)).bound_count(), 1);
        assert_eq!(TriplePattern::with_sp(id(1), id(2)).bound_count(), 2);
        assert_eq!(TriplePattern::exact(id(1), id(2), id(3)).bound_count(), 3);
    }

    #[test]
    fn matches_respects_every_bound_position() {
        let t = Triple::new(id(1), id(2), id(3));
        assert!(TriplePattern::any().matches(&t));
        assert!(TriplePattern::with_sp(id(1), id(2)).matches(&t));
        assert!(!TriplePattern::with_sp(id(1), id(9)).matches(&t));
        assert!(TriplePattern::exact(id(1), id(2), id(3)).matches(&t));
        assert!(!TriplePattern::exact(id(1), id(2), id(4)).matches(&t));
        assert!(TriplePattern::with_so(id(1), id(3)).matches(&t));
        assert!(!TriplePattern::with_o(id(1)).matches(&t));
    }

    #[test]
    fn triple_ordering_is_spo_lexicographic() {
        let a = Triple::new(id(1), id(1), id(2));
        let b = Triple::new(id(1), id(2), id(1));
        let c = Triple::new(id(2), id(0), id(0));
        assert!(a < b && b < c);
    }
}
