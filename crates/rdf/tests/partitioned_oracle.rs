//! Property test: the predicate-partitioned store must be observably
//! identical to a flat-run oracle (a plain `BTreeSet` of SPO keys) under
//! arbitrary interleavings of insert / remove / flush / bulk-load, at
//! every merge threshold, for every pattern shape.

use proptest::prelude::*;
use sofya_rdf::{Term, TermId, TriplePattern, TripleStore};
use std::collections::BTreeSet;

const ENTITIES: u32 = 9;
const PREDICATES: u32 = 4;

/// One step of an interleaved op sequence.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u32, u32),
    Remove(u32, u32, u32),
    /// Bulk-load a batch (may contain duplicates, internal and external).
    Batch(Vec<(u32, u32, u32)>),
    Flush,
}

fn op() -> impl Strategy<Value = Op> {
    fn triple() -> (
        std::ops::Range<u32>,
        std::ops::Range<u32>,
        std::ops::Range<u32>,
    ) {
        (0..ENTITIES, 0..PREDICATES, 0..ENTITIES)
    }
    // The vendored proptest has no weighted prop_oneof; repeating the
    // insert arm biases the mix toward growth.
    prop_oneof![
        triple().prop_map(|(s, p, o)| Op::Insert(s, p, o)),
        triple().prop_map(|(s, p, o)| Op::Insert(s, p, o)),
        triple().prop_map(|(s, p, o)| Op::Insert(s, p, o)),
        triple().prop_map(|(s, p, o)| Op::Remove(s, p, o)),
        proptest::collection::vec(triple(), 1..20).prop_map(Op::Batch),
        Just(Op::Flush),
    ]
}

/// Interns the fact universe up front so op ids map to stable term ids.
fn fresh_store(threshold: usize) -> (TripleStore, Vec<TermId>, Vec<TermId>) {
    let mut store = TripleStore::new();
    store.set_merge_threshold(threshold);
    let entities: Vec<TermId> = (0..ENTITIES)
        .map(|e| store.intern(&Term::iri(format!("e{e}"))))
        .collect();
    let predicates: Vec<TermId> = (0..PREDICATES)
        .map(|p| store.intern(&Term::iri(format!("p{p}"))))
        .collect();
    (store, entities, predicates)
}

/// Every pattern shape over the (small) id universe, plus a foreign id.
fn check_all_patterns(store: &TripleStore, oracle: &BTreeSet<(u32, u32, u32)>, step: usize) {
    // Full-scan agreement (content and SPO order).
    let scanned: Vec<(u32, u32, u32)> = store.iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
    let expected: Vec<(u32, u32, u32)> = oracle.iter().copied().collect();
    assert_eq!(scanned, expected, "full scan at step {step}");
    assert_eq!(store.len(), oracle.len(), "len at step {step}");

    let ids: Vec<Option<TermId>> = (0..ENTITIES + PREDICATES)
        .map(|i| Some(TermId(i)))
        .chain([None, Some(TermId(u32::MAX))])
        .collect();
    for &s in &ids {
        for &p in &ids {
            for &o in &ids {
                let pat = TriplePattern { s, p, o };
                let brute: BTreeSet<(u32, u32, u32)> = oracle
                    .iter()
                    .copied()
                    .filter(|&(ks, kp, ko)| {
                        s.is_none_or(|v| v.0 == ks)
                            && p.is_none_or(|v| v.0 == kp)
                            && o.is_none_or(|v| v.0 == ko)
                    })
                    .collect();
                assert_eq!(
                    store.count_pattern(pat),
                    brute.len(),
                    "count {pat:?} at step {step}"
                );
                let got: BTreeSet<(u32, u32, u32)> =
                    store.scan(pat).map(|t| (t.s.0, t.p.0, t.o.0)).collect();
                assert_eq!(got, brute, "scan {pat:?} at step {step}");
            }
        }
    }

    // Predicate directory agrees with the oracle's live predicates.
    let live: BTreeSet<u32> = oracle.iter().map(|&(_, p, _)| p).collect();
    let dir: BTreeSet<u32> = store.predicates().iter().map(|p| p.0).collect();
    assert_eq!(dir, live, "predicate directory at step {step}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved single ops and batches, checked exhaustively over all
    /// pattern shapes every few steps (every step would be O(n^3) per op).
    #[test]
    fn partitioned_store_matches_flat_oracle(
        threshold in prop_oneof![Just(1usize), Just(3), Just(8), Just(1024)],
        ops in proptest::collection::vec(op(), 1..40),
    ) {
        let (mut store, entities, predicates) = fresh_store(threshold);
        let mut oracle: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
        let key = |s: u32, p: u32, o: u32, e: &[TermId], pr: &[TermId]| {
            (e[s as usize].0, pr[p as usize].0, e[o as usize].0)
        };
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Insert(s, p, o) => {
                    let (ks, kp, ko) = key(*s, *p, *o, &entities, &predicates);
                    let fresh = store.insert(TermId(ks), TermId(kp), TermId(ko));
                    prop_assert_eq!(fresh, oracle.insert((ks, kp, ko)), "insert at step {}", step);
                }
                Op::Remove(s, p, o) => {
                    let (ks, kp, ko) = key(*s, *p, *o, &entities, &predicates);
                    let was = store.remove(TermId(ks), TermId(kp), TermId(ko));
                    prop_assert_eq!(was, oracle.remove(&(ks, kp, ko)), "remove at step {}", step);
                }
                Op::Batch(batch) => {
                    let keys: Vec<(TermId, TermId, TermId)> = batch
                        .iter()
                        .map(|&(s, p, o)| {
                            let (ks, kp, ko) = key(s, p, o, &entities, &predicates);
                            (TermId(ks), TermId(kp), TermId(ko))
                        })
                        .collect();
                    let mut new = 0usize;
                    for &(s, p, o) in &keys {
                        if oracle.insert((s.0, p.0, o.0)) {
                            new += 1;
                        }
                    }
                    prop_assert_eq!(store.load_batch(keys), new, "batch at step {}", step);
                }
                Op::Flush => store.flush(),
            }
            if step % 7 == 0 {
                check_all_patterns(&store, &oracle, step);
            }
        }
        check_all_patterns(&store, &oracle, ops.len());
        store.flush();
        check_all_patterns(&store, &oracle, ops.len() + 1);
    }
}
