//! # sofya-service
//!
//! The concurrent alignment service: the "serves heavy traffic" layer on
//! top of the single-threaded alignment pipeline.
//!
//! The paper's setting is *online* relation alignment — many clients
//! firing small probes at live endpoints concurrently. This crate
//! provides the serving machinery:
//!
//! * a bounded multi-producer/multi-consumer [`queue::BoundedQueue`]
//!   whose full-queue rejections are the backpressure signal;
//! * a generic [`scheduler`]: N scoped worker threads over the queue,
//!   per-client request quotas, reject-with-retry-after on overload, and
//!   panic containment (a dying session never takes the pool down);
//! * a [`metrics::ServiceMetrics`] registry — throughput, approximate
//!   p50/p99 latency, queue depth, and snapshot staleness — all relaxed
//!   atomics, shared freely with the workers;
//! * the alignment-specific [`service::AlignmentService`]: a shared
//!   [`sofya_core::AlignmentSession`] (first request per relation pays,
//!   later ones are cache hits) scheduled across the pool;
//! * the [`query::QueryService`]: raw endpoint traffic, scheduled as
//!   whole [`sofya_endpoint::Request::Batch`]es — one job, one snapshot
//!   pin, one response set per client batch.
//!
//! Snapshot isolation for the *data* side lives one layer down, in
//! [`sofya_endpoint::SnapshotStore`] / [`sofya_endpoint::ConcurrentEndpoint`]:
//! the writer keeps loading while this crate's workers read the published
//! snapshot lock-free. The two compose into the full service stack:
//!
//! ```text
//! writer thread          SnapshotStore::publish()      (epoch swap)
//!      │                          │
//!      ▼                          ▼
//! TripleStore ──snapshot──▶ Arc<PublishedSnapshot> ◀── ConcurrentEndpoint (N readers)
//!                                                            ▲
//! clients ──▶ BoundedQueue ──▶ worker pool ── AlignmentSession┘
//!   (quotas, retry-after)     (panic containment, metrics)
//! ```

#![forbid(unsafe_code)]

pub mod metrics;
pub mod query;
pub mod queue;
pub mod scheduler;
pub mod service;

pub use metrics::{LatencyHistogram, MetricsReport, ServiceMetrics};
pub use query::{QueryBatch, QueryBatchOutcome, QueryFailure, QueryService};
pub use queue::{BoundedQueue, PushError};
pub use scheduler::{
    run_batch, serve, JobOutcome, JobTicket, RejectedJob, SchedulerConfig, SchedulerHandle,
    ServiceError, SubmitError,
};
pub use service::{AlignmentBatchOutcome, AlignmentRequest, AlignmentService, ServiceFailure};
