//! Lock-free service metrics: counters, a log-bucketed latency histogram
//! (p50/p99), queue depth, and snapshot age.
//!
//! Every value is an atomic updated with relaxed ordering — metrics are
//! observability, not synchronisation — so recording from N workers never
//! contends. Reading produces a consistent-enough [`MetricsReport`]
//! (individual values may be a few events apart, which is fine for a
//! dashboard line).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of histogram buckets: bucket `i` holds latencies whose
/// nanosecond value has `i` significant bits, i.e. `[2^(i-1), 2^i)`.
const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram. Quantiles are approximate (within
/// a factor of 2, the bucket width), which is the usual contract for
/// service-side p99 gauges.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one latency observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        if let Some(cell) = self.buckets.get(bucket) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// The approximate `q`-quantile in nanoseconds: the upper bound of
    /// the first bucket whose cumulative count reaches `q · total`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// Shared registry of everything the service reports. Cheap to hand to
/// every worker by reference; snapshot with [`ServiceMetrics::report`].
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Requests accepted into the queue.
    submitted: AtomicU64,
    /// Requests whose handler ran to completion.
    completed: AtomicU64,
    /// Requests rejected because the queue was full (backpressure).
    rejected_full: AtomicU64,
    /// Requests rejected because the client's quota was exhausted.
    rejected_quota: AtomicU64,
    /// Requests whose handler panicked (contained; the worker survived).
    panicked: AtomicU64,
    /// Pending items in the work queue right now.
    queue_depth: AtomicU64,
    /// End-to-end latency (submit → handler done), including queue wait.
    latency: LatencyHistogram,
    /// Queue-wait component of the latency (submit → handler start).
    queue_wait: LatencyHistogram,
    /// Age of the store snapshot observed by the most recent request, in
    /// nanoseconds — how stale reads are allowed to get.
    snapshot_age_ns: AtomicU64,
    /// WAL group-commit fsync latency (the durable-publish ack path).
    wal_fsync: LatencyHistogram,
    /// Highest epoch whose WAL commit has been fsynced — everything up
    /// to here survives a crash.
    durable_epoch: AtomicU64,
    /// Queries killed because their execution deadline passed.
    queries_timed_out: AtomicU64,
    /// Queries aborted by an external cancel (drain, client disconnect).
    queries_cancelled: AtomicU64,
    /// Queued jobs dropped unexecuted because their deadline had already
    /// passed at dequeue time (no worker time wasted on them).
    queries_shed: AtomicU64,
    /// Upstream circuit-breaker state gauge (0 closed / 1 open / 2
    /// half-open); 0 when no breaker reports in.
    breaker_state: AtomicU64,
    /// Epoch of the most recent snapshot publish — staleness expressible
    /// in epochs, alongside the wall-clock `snapshot_age_ns`.
    last_publish_epoch: AtomicU64,
    /// Cached relation alignments currently dirtied by deltas.
    dirty_relations: AtomicU64,
    /// Epoch lag of the stalest dirty alignment (0 when clean).
    alignment_staleness_epochs: AtomicU64,
}

impl ServiceMetrics {
    pub(crate) fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back [`ServiceMetrics::on_submitted`] when the queue push was
    /// rejected (the envelope never became visible to a worker).
    pub(crate) fn on_submission_rejected(&self) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn on_dequeued(&self, waited: Duration) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait.record(waited);
    }

    pub(crate) fn on_completed(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    pub(crate) fn on_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_quota(&self) {
        self.rejected_quota.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_panicked(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the snapshot age a request observed (last write wins —
    /// it's a gauge, not a histogram).
    pub fn record_snapshot_age(&self, age: Duration) {
        let ns = age.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.snapshot_age_ns.store(ns, Ordering::Relaxed);
    }

    /// Records one WAL fsync latency observation (a durable publish).
    pub fn record_wal_fsync(&self, latency: Duration) {
        self.wal_fsync.record(latency);
    }

    /// Records the durable epoch gauge (last write wins).
    pub fn record_durable_epoch(&self, epoch: u64) {
        self.durable_epoch.store(epoch, Ordering::Relaxed);
    }

    /// Counts one query killed by its deadline.
    pub fn on_query_timed_out(&self) {
        self.queries_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one query aborted by an external cancel.
    pub fn on_query_cancelled(&self) {
        self.queries_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one queued job shed unexecuted (deadline already passed).
    pub fn on_query_shed(&self) {
        self.queries_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the upstream breaker-state gauge (last write wins).
    pub fn record_breaker_state(&self, state: u64) {
        self.breaker_state.store(state, Ordering::Relaxed);
    }

    /// Records the epoch of the newest published snapshot (a gauge).
    pub fn record_last_publish_epoch(&self, epoch: u64) {
        self.last_publish_epoch.store(epoch, Ordering::Relaxed);
    }

    /// Records how many cached alignments are currently dirty (a gauge).
    pub fn record_dirty_relations(&self, n: u64) {
        self.dirty_relations.store(n, Ordering::Relaxed);
    }

    /// Records the epoch lag of the stalest dirty alignment (a gauge).
    pub fn record_alignment_staleness_epochs(&self, n: u64) {
        self.alignment_staleness_epochs.store(n, Ordering::Relaxed);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every metric.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            latency_mean_ns: self.latency.mean_ns(),
            latency_p50_ns: self.latency.quantile_ns(0.50),
            latency_p99_ns: self.latency.quantile_ns(0.99),
            queue_wait_p99_ns: self.queue_wait.quantile_ns(0.99),
            snapshot_age_ns: self.snapshot_age_ns.load(Ordering::Relaxed),
            wal_fsync_p99_ns: self.wal_fsync.quantile_ns(0.99),
            durable_epoch: self.durable_epoch.load(Ordering::Relaxed),
            queries_timed_out: self.queries_timed_out.load(Ordering::Relaxed),
            queries_cancelled: self.queries_cancelled.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            breaker_state: self.breaker_state.load(Ordering::Relaxed),
            last_publish_epoch: self.last_publish_epoch.load(Ordering::Relaxed),
            dirty_relations: self.dirty_relations.load(Ordering::Relaxed),
            alignment_staleness_epochs: self.alignment_staleness_epochs.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time metrics snapshot (plain data, cheap to copy around).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed by a worker.
    pub completed: u64,
    /// Rejections due to a full queue.
    pub rejected_full: u64,
    /// Rejections due to an exhausted client quota.
    pub rejected_quota: u64,
    /// Contained handler panics.
    pub panicked: u64,
    /// Queue depth at report time.
    pub queue_depth: u64,
    /// Mean end-to-end latency (ns).
    pub latency_mean_ns: u64,
    /// Approximate median end-to-end latency (ns).
    pub latency_p50_ns: u64,
    /// Approximate 99th-percentile end-to-end latency (ns).
    pub latency_p99_ns: u64,
    /// Approximate 99th-percentile queue wait (ns).
    pub queue_wait_p99_ns: u64,
    /// Snapshot age observed by the most recent request (ns).
    pub snapshot_age_ns: u64,
    /// Approximate 99th-percentile WAL fsync latency (ns); 0 when the
    /// store runs without durability.
    pub wal_fsync_p99_ns: u64,
    /// Highest crash-durable epoch; 0 without durability.
    pub durable_epoch: u64,
    /// Queries killed by their execution deadline.
    pub queries_timed_out: u64,
    /// Queries aborted by an external cancel (drain, disconnect).
    pub queries_cancelled: u64,
    /// Queued jobs shed unexecuted because their deadline had passed.
    pub queries_shed: u64,
    /// Upstream circuit-breaker state (0 closed / 1 open / 2 half-open).
    pub breaker_state: u64,
    /// Epoch of the most recent snapshot publish (0 when unreported).
    pub last_publish_epoch: u64,
    /// Cached relation alignments currently dirty (streaming path).
    pub dirty_relations: u64,
    /// Epoch lag of the stalest dirty alignment (0 when clean).
    pub alignment_staleness_epochs: u64,
}

impl MetricsReport {
    /// Completed requests per second over `elapsed`.
    pub fn throughput_per_sec(&self, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_ns(0.5);
        // The median observation is 30µs; the log₂ bucket bound is within 2x.
        assert!((15_000..=65_000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 1_000_000 / 2, "p99 {p99} must reflect the 1ms tail");
        assert!(h.mean_ns() > 0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn counters_flow_into_report() {
        let m = ServiceMetrics::default();
        m.on_submitted();
        m.on_submitted();
        m.on_dequeued(Duration::from_micros(5));
        m.on_completed(Duration::from_micros(50));
        m.on_rejected_full();
        m.on_rejected_quota();
        m.on_panicked();
        m.record_snapshot_age(Duration::from_millis(3));
        m.record_wal_fsync(Duration::from_micros(120));
        m.record_durable_epoch(7);
        m.on_query_timed_out();
        m.on_query_cancelled();
        m.on_query_shed();
        m.record_breaker_state(2);
        m.record_last_publish_epoch(11);
        m.record_dirty_relations(4);
        m.record_alignment_staleness_epochs(2);
        let r = m.report();
        assert_eq!(r.last_publish_epoch, 11);
        assert_eq!(r.dirty_relations, 4);
        assert_eq!(r.alignment_staleness_epochs, 2);
        assert_eq!(r.queries_timed_out, 1);
        assert_eq!(r.queries_cancelled, 1);
        assert_eq!(r.queries_shed, 1);
        assert_eq!(r.breaker_state, 2);
        assert_eq!(r.submitted, 2);
        assert_eq!(r.completed, 1);
        assert_eq!(r.rejected_full, 1);
        assert_eq!(r.rejected_quota, 1);
        assert_eq!(r.panicked, 1);
        assert_eq!(r.queue_depth, 1);
        assert!(r.latency_p50_ns > 0);
        assert!(r.snapshot_age_ns >= 3_000_000);
        assert!(
            r.wal_fsync_p99_ns >= 120_000 / 2,
            "p99 {}",
            r.wal_fsync_p99_ns
        );
        assert_eq!(r.durable_epoch, 7);
        assert!(r.throughput_per_sec(Duration::from_secs(1)) >= 1.0);
        assert_eq!(r.throughput_per_sec(Duration::ZERO), 0.0);
    }
}
