//! The query service: typed endpoint request **batches** as the
//! scheduler's unit of work.
//!
//! Where [`crate::service::AlignmentService`] schedules whole alignment
//! sessions, this layer serves raw endpoint traffic: each client submits
//! a [`QueryBatch`] — a set of owned [`RequestBuf`]s — and the worker
//! pool executes every batch as a single [`Request::Batch`] against the
//! shared endpoint. With a [`sofya_endpoint::ConcurrentEndpoint`] that
//! means one epoch-cell load and one consistent snapshot per batch
//! instead of per query, and quota charging / accounting still sees
//! every leaf request (see [`sofya_endpoint::Request::leaf_count`]).

use crate::metrics::MetricsReport;
use crate::scheduler::{serve, JobOutcome, SchedulerConfig, ServiceError, SubmitError};
use sofya_endpoint::{Endpoint, EndpointError, Request, RequestBuf, Response};
use std::time::{Duration, Instant};

/// One client submission: a request set executed as a unit on behalf of
/// `client` (the quota / accounting key).
#[derive(Debug, Clone)]
pub struct QueryBatch {
    /// Quota and accounting key.
    pub client: String,
    /// The requests, executed in order against one snapshot.
    pub requests: Vec<RequestBuf>,
}

impl QueryBatch {
    /// Convenience constructor.
    pub fn new(client: impl Into<String>, requests: Vec<RequestBuf>) -> Self {
        Self {
            client: client.into(),
            requests,
        }
    }
}

/// Why one batch produced no responses.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryFailure {
    /// The endpoint failed (the whole batch fails as a unit).
    Endpoint(EndpointError),
    /// The scheduler rejected the batch (quota; or queue-full if the
    /// caller opted out of the backpressure retry loop).
    Rejected(SubmitError),
    /// The handler panicked; the panic was contained to this batch.
    Panicked(String),
}

impl std::fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryFailure::Endpoint(e) => write!(f, "batch failed: {e}"),
            QueryFailure::Rejected(e) => write!(f, "batch rejected: {e}"),
            QueryFailure::Panicked(msg) => write!(f, "query worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for QueryFailure {}

/// The outcome of one scheduled run.
#[derive(Debug)]
pub struct QueryBatchOutcome {
    /// Per-batch responses (one [`Response`] per sub-request, in
    /// submission order).
    pub responses: Vec<Result<Vec<Response>, QueryFailure>>,
    /// Service metrics accumulated over the run. `completed` counts
    /// *batches* — the scheduler's unit of work — not leaf queries;
    /// per-leaf accounting belongs to an
    /// [`sofya_endpoint::InstrumentedEndpoint`] in the endpoint stack.
    pub metrics: MetricsReport,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// A multi-threaded query service over one shared endpoint.
pub struct QueryService<'a, E: ?Sized> {
    endpoint: &'a E,
    scheduler: SchedulerConfig,
}

impl<'a, E: Endpoint + ?Sized> QueryService<'a, E> {
    /// Creates a service with default scheduler knobs.
    pub fn new(endpoint: &'a E) -> Self {
        Self {
            endpoint,
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Overrides the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// The scheduler configuration in effect.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// Schedules `batches` across the worker pool and waits for all of
    /// them. Each batch is one scheduler job and one
    /// [`Request::Batch`] execution. Queue-full backpressure is absorbed
    /// with the retry-after loop; quota rejections surface per batch.
    pub fn run(&self, batches: Vec<QueryBatch>) -> Result<QueryBatchOutcome, ServiceError> {
        // sofya: allow(determinism) — batch wall-time is a reported metric, never alignment state
        let started = Instant::now();
        let (responses, metrics) = serve(
            &self.scheduler,
            |requests: Vec<RequestBuf>| {
                let borrowed: Vec<Request<'_>> =
                    requests.iter().map(RequestBuf::as_request).collect();
                self.endpoint
                    .execute(Request::Batch(borrowed))
                    .and_then(Response::into_batch)
            },
            |handle| {
                let tickets: Vec<_> = batches
                    .into_iter()
                    .map(|batch| handle.submit_with_backpressure(&batch.client, batch.requests))
                    .collect();
                let responses: Vec<Result<Vec<Response>, QueryFailure>> = tickets
                    .into_iter()
                    .map(|ticket| match ticket {
                        Ok(ticket) => match ticket.wait() {
                            JobOutcome::Completed(result) => result.map_err(QueryFailure::Endpoint),
                            JobOutcome::Panicked(msg) => Err(QueryFailure::Panicked(msg)),
                            JobOutcome::Shed => {
                                // sofya: allow(panic_path) — batch queries carry no deadline, Shed cannot occur
                                unreachable!("batch queries are submitted without a deadline")
                            }
                        },
                        Err(error) => Err(QueryFailure::Rejected(error)),
                    })
                    .collect();
                let metrics = handle.metrics().report();
                (responses, metrics)
            },
        )?;
        Ok(QueryBatchOutcome {
            responses,
            metrics,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofya_endpoint::SnapshotStore;
    use sofya_rdf::{Term, TripleStore};
    use sofya_sparql::Prepared;
    use std::sync::Arc;

    fn writer() -> SnapshotStore {
        let mut store = TripleStore::new();
        for i in 0..20 {
            store.insert_terms(
                &Term::iri(format!("e:s{}", i % 5)),
                &Term::iri(format!("r:p{}", i % 2)),
                &Term::iri(format!("e:o{i}")),
            );
        }
        SnapshotStore::new(store)
    }

    fn probe_batch(subject: &str) -> Vec<RequestBuf> {
        let objects = Arc::new(
            Prepared::new("SELECT ?o WHERE { ?s ?r ?o } ORDER BY ?o", &["s", "r"]).unwrap(),
        );
        let pattern = Arc::new(Prepared::new("SELECT ?s ?o WHERE { ?s ?r ?o }", &["r"]).unwrap());
        vec![
            RequestBuf::Select {
                query: format!("SELECT ?o {{ <{subject}> <r:p1> ?o }} ORDER BY ?o"),
            },
            RequestBuf::PreparedSelect {
                prepared: objects,
                args: vec![Term::iri(subject), Term::iri("r:p1")],
            },
            RequestBuf::Count {
                prepared: pattern,
                args: vec![Term::iri("r:p1")],
            },
            RequestBuf::Ask {
                query: format!("ASK {{ <{subject}> <r:p1> ?o }}"),
            },
        ]
    }

    /// The scheduled service answers exactly what direct sequential
    /// execution answers — across workers and clients.
    #[test]
    fn scheduled_batches_match_direct_execution() {
        let writer = writer();
        let ep = writer.reader("kb");
        let service = QueryService::new(&ep).with_scheduler(SchedulerConfig::for_batch(4, 8));
        let batches: Vec<QueryBatch> = (0..8)
            .map(|i| QueryBatch::new(format!("client{}", i % 3), probe_batch(&format!("e:s{i}"))))
            .collect();
        let expected: Vec<Vec<Response>> = batches
            .iter()
            .map(|b| {
                b.requests
                    .iter()
                    .map(|r| ep.execute(r.as_request()).unwrap())
                    .collect()
            })
            .collect();
        let out = service.run(batches).unwrap();
        assert_eq!(out.responses.len(), 8);
        for (got, want) in out.responses.iter().zip(&expected) {
            assert_eq!(got.as_ref().unwrap(), want);
        }
        assert_eq!(out.metrics.completed, 8, "one job per batch");
    }

    #[test]
    fn per_client_quota_counts_batches() {
        let writer = writer();
        let ep = writer.reader("kb");
        let service = QueryService::new(&ep).with_scheduler(SchedulerConfig {
            workers: 2,
            queue_capacity: 8,
            client_quotas: vec![("greedy".into(), 1)],
            ..SchedulerConfig::default()
        });
        let out = service
            .run(vec![
                QueryBatch::new("greedy", probe_batch("e:s0")),
                QueryBatch::new("greedy", probe_batch("e:s1")), // over quota
                QueryBatch::new("modest", probe_batch("e:s1")),
            ])
            .unwrap();
        assert!(out.responses[0].is_ok());
        assert!(matches!(
            out.responses[1],
            Err(QueryFailure::Rejected(SubmitError::QuotaExhausted { .. }))
        ));
        assert!(out.responses[2].is_ok());
    }

    #[test]
    fn endpoint_errors_fail_only_their_batch() {
        let writer = writer();
        let ep = writer.reader("kb");
        let service = QueryService::new(&ep).with_scheduler(SchedulerConfig::for_batch(2, 2));
        let out = service
            .run(vec![
                QueryBatch::new(
                    "c",
                    vec![RequestBuf::Select {
                        query: "NOT SPARQL".to_owned(),
                    }],
                ),
                QueryBatch::new("c", probe_batch("e:s0")),
            ])
            .unwrap();
        assert!(matches!(
            out.responses[0],
            Err(QueryFailure::Endpoint(EndpointError::Sparql(_)))
        ));
        assert!(out.responses[1].is_ok());
    }

    /// Sanity-check the "one snapshot per batch" claim end to end: a
    /// worker executing a batch through the service observes a single
    /// version even while the writer publishes between runs.
    #[test]
    fn batches_see_consistent_state_across_publishes() {
        let mut writer = writer();
        let ep = writer.reader("kb");
        let pattern = Arc::new(Prepared::new("SELECT ?s ?o WHERE { ?s ?r ?o }", &["r"]).unwrap());
        let count_twice = || {
            vec![
                RequestBuf::Count {
                    prepared: Arc::clone(&pattern),
                    args: vec![Term::iri("r:p1")],
                },
                RequestBuf::Count {
                    prepared: Arc::clone(&pattern),
                    args: vec![Term::iri("r:p1")],
                },
            ]
        };
        let service = QueryService::new(&ep).with_scheduler(SchedulerConfig::for_batch(2, 4));
        let baseline = {
            let out = service
                .run(vec![QueryBatch::new("c", count_twice())])
                .unwrap();
            let responses = out.responses[0].as_ref().unwrap().clone();
            assert_eq!(responses[0], responses[1], "one snapshot per batch");
            responses[0].clone().into_count().unwrap()
        };
        writer
            .store_mut()
            .insert_terms(&Term::iri("e:new"), &Term::iri("r:p1"), &Term::iri("e:x"));
        writer.publish();
        let out = service
            .run(vec![QueryBatch::new("c", count_twice())])
            .unwrap();
        let responses = out.responses[0].as_ref().unwrap().clone();
        assert_eq!(responses[0], responses[1]);
        assert_eq!(
            responses[0].clone().into_count().unwrap(),
            baseline + 1,
            "fresh batches follow the publish"
        );
    }
}
