//! A bounded multi-producer / multi-consumer work queue.
//!
//! The scheduler's backpressure primitive: producers `try_push` and are
//! told immediately when the queue is full (the service turns that into a
//! reject-with-retry-after instead of letting latency grow unboundedly);
//! consumers block on `pop` until work arrives or the queue is closed.
//!
//! Built on `std::sync::{Mutex, Condvar}` rather than the vendored
//! `parking_lot` shim because the shim exposes no condition variable; the
//! lock is held only for a `VecDeque` operation.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back for retry.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO queue with blocking consumers and non-blocking
/// (reject-on-full) producers.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` pending items
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pending items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues without blocking; on a full or closed queue the item is
    /// returned so the caller can apply its backpressure policy.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None` — the consumer's shutdown
    /// signal).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: producers are rejected from now on, consumers
    /// drain the remaining items and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // Matches parking_lot semantics: a panicking worker (contained by
        // the scheduler's catch_unwind) must not poison the whole service.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_round_trip_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_and_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err(PushError::Full("c")));
        // Draining one slot re-opens the queue.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_rejects_producers_and_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed queue stays closed");
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert!(matches!(q.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn blocking_pop_wakes_on_push_across_threads() {
        let q = std::sync::Arc::new(BoundedQueue::new(2));
        std::thread::scope(|scope| {
            let consumer = {
                let q = std::sync::Arc::clone(&q);
                scope.spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };
            for i in 0..20 {
                loop {
                    match q.try_push(i) {
                        Ok(()) => break,
                        Err(PushError::Full(_)) => std::thread::yield_now(),
                        Err(PushError::Closed(_)) => panic!("unexpected close"),
                    }
                }
            }
            q.close();
            let got = consumer.join().unwrap();
            assert_eq!(got, (0..20).collect::<Vec<_>>());
        });
    }
}
