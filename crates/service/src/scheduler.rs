//! The session scheduler: N worker threads over a bounded work queue,
//! with per-client quotas, reject-with-retry-after backpressure, and
//! panic containment.
//!
//! The scheduler is generic over the job type; the alignment-specific
//! layer lives in [`crate::service`], and the evaluation harness drives
//! its relation- and seed-level fan-out through the same `serve` loop.
//!
//! Shape: [`serve`] owns the queue and the worker pool inside a
//! `std::thread::scope`, and hands the caller a [`SchedulerHandle`] in a
//! driver closure. The driver submits jobs (getting a [`JobTicket`] per
//! accepted job) and waits for results; when it returns, the queue is
//! closed, the workers drain what is left and exit, and `serve` returns
//! the driver's value. Nothing leaks: a panicking driver still closes the
//! queue (so the scope can join), and a panicking *handler* is contained
//! to its job — the worker reports [`JobOutcome::Panicked`] and moves on.

use crate::metrics::ServiceMetrics;
use crate::queue::{BoundedQueue, PushError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads. Zero is a configuration error ([`ServiceError::NoWorkers`]).
    pub workers: usize,
    /// Bound on queued (not yet running) jobs; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-client request budget for clients without an explicit entry in
    /// `client_quotas`; `None` = unlimited.
    pub default_client_quota: Option<u64>,
    /// Explicit per-client request budgets.
    pub client_quotas: Vec<(String, u64)>,
    /// The retry hint returned with [`SubmitError::QueueFull`].
    pub retry_after: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 64,
            default_client_quota: None,
            client_quotas: Vec::new(),
            retry_after: Duration::from_millis(1),
        }
    }
}

impl SchedulerConfig {
    /// A config sized for an in-process batch: `workers` threads and a
    /// queue large enough that the batch never trips backpressure.
    pub fn for_batch(workers: usize, batch_len: usize) -> Self {
        Self {
            workers,
            queue_capacity: batch_len.max(1),
            ..Self::default()
        }
    }
}

/// Service-level configuration errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// `workers == 0`: the pool could never make progress.
    NoWorkers,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NoWorkers => write!(f, "scheduler configured with zero workers"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the queue is full. Retry after the hinted delay.
    QueueFull {
        /// Suggested client-side wait before retrying.
        retry_after: Duration,
    },
    /// The client spent its whole request budget.
    QuotaExhausted {
        /// The over-budget client.
        client: String,
    },
    /// The scheduler is shutting down (driver already returned).
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => {
                write!(f, "queue full; retry after {retry_after:?}")
            }
            SubmitError::QuotaExhausted { client } => {
                write!(f, "quota exhausted for client {client:?}")
            }
            SubmitError::ShuttingDown => write!(f, "scheduler is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A rejected submission: the error plus the job handed back, so callers
/// can retry without cloning.
#[derive(Debug)]
pub struct RejectedJob<J> {
    /// The job that was not accepted.
    pub job: J,
    /// Why it was rejected.
    pub error: SubmitError,
}

/// What happened to one accepted job.
#[derive(Debug)]
pub enum JobOutcome<R> {
    /// The handler ran to completion.
    Completed(R),
    /// The handler panicked (contained; the worker kept serving). The
    /// payload is the panic message.
    Panicked(String),
    /// The job was dropped unexecuted: its deadline had already passed
    /// when a worker dequeued it, so running it would only waste worker
    /// time on an answer nobody is waiting for.
    Shed,
}

/// A claim on one accepted job's eventual outcome.
#[derive(Debug)]
pub struct JobTicket<R> {
    rx: mpsc::Receiver<JobOutcome<R>>,
}

impl<R> JobTicket<R> {
    /// Blocks until the job finishes. Workers always report an outcome
    /// for every accepted job (even a panicking one), so this only falls
    /// back to a synthetic panic report if a worker was killed externally.
    pub fn wait(self) -> JobOutcome<R> {
        self.rx
            .recv()
            .unwrap_or_else(|_| JobOutcome::Panicked("worker dropped the reply channel".into()))
    }
}

struct Envelope<J, R> {
    job: J,
    reply: mpsc::Sender<JobOutcome<R>>,
    submitted_at: Instant,
    /// Absolute deadline; a worker dequeuing the envelope after this
    /// instant sheds it instead of running the handler.
    deadline: Option<Instant>,
}

/// The driver's interface to a running scheduler.
pub struct SchedulerHandle<'s, J, R> {
    queue: &'s BoundedQueue<Envelope<J, R>>,
    metrics: &'s ServiceMetrics,
    quotas: &'s Mutex<HashMap<String, u64>>,
    config: &'s SchedulerConfig,
}

impl<J, R> SchedulerHandle<'_, J, R> {
    /// Submits a job for `client`. Rejects immediately (without
    /// blocking) when the client's quota is spent or the queue is full —
    /// the caller decides whether to retry, shed, or surface the error,
    /// and gets the job back to do so.
    pub fn submit(&self, client: &str, job: J) -> Result<JobTicket<R>, RejectedJob<J>> {
        self.submit_with_deadline(client, job, None)
    }

    /// [`SchedulerHandle::submit`] with an absolute deadline attached:
    /// if the job is still queued when the deadline passes, the worker
    /// that dequeues it **sheds** it (reports [`JobOutcome::Shed`],
    /// counts `queries_shed`) instead of running the handler — under
    /// overload, worker time goes to jobs whose callers are still
    /// waiting.
    pub fn submit_with_deadline(
        &self,
        client: &str,
        job: J,
        deadline: Option<Instant>,
    ) -> Result<JobTicket<R>, RejectedJob<J>> {
        if !self.try_charge(client) {
            self.metrics.on_rejected_quota();
            return Err(RejectedJob {
                job,
                error: SubmitError::QuotaExhausted {
                    client: client.to_owned(),
                },
            });
        }
        let (tx, rx) = mpsc::channel();
        let envelope = Envelope {
            job,
            reply: tx,
            // sofya: allow(determinism) — queue-wait latency gauge, never alignment state
            submitted_at: Instant::now(),
            deadline,
        };
        // Count the submission *before* the push: the moment the envelope
        // is in the queue a worker may dequeue it, and its depth decrement
        // must never observe a gauge this thread has not incremented yet.
        self.metrics.on_submitted();
        match self.queue.try_push(envelope) {
            Ok(()) => Ok(JobTicket { rx }),
            Err(PushError::Full(envelope)) => {
                self.metrics.on_submission_rejected();
                self.refund(client);
                self.metrics.on_rejected_full();
                Err(RejectedJob {
                    job: envelope.job,
                    error: SubmitError::QueueFull {
                        retry_after: self.config.retry_after,
                    },
                })
            }
            Err(PushError::Closed(envelope)) => {
                self.metrics.on_submission_rejected();
                self.refund(client);
                Err(RejectedJob {
                    job: envelope.job,
                    error: SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Submits with the standard client-side backpressure loop: on
    /// [`SubmitError::QueueFull`], waits the hinted delay and retries
    /// with the returned job. Quota and shutdown rejections surface
    /// immediately.
    pub fn submit_with_backpressure(
        &self,
        client: &str,
        job: J,
    ) -> Result<JobTicket<R>, SubmitError> {
        let mut job = job;
        loop {
            match self.submit(client, job) {
                Ok(ticket) => return Ok(ticket),
                Err(rejected) => match rejected.error {
                    SubmitError::QueueFull { retry_after } => {
                        job = rejected.job;
                        std::thread::sleep(retry_after);
                    }
                    error => return Err(error),
                },
            }
        }
    }

    /// The live metrics registry (shared with the workers).
    pub fn metrics(&self) -> &ServiceMetrics {
        self.metrics
    }

    /// Remaining quota for `client` (`None` = unlimited).
    pub fn remaining_quota(&self, client: &str) -> Option<u64> {
        let map = self.quotas.lock();
        map.get(client)
            .copied()
            .or(self.config.default_client_quota)
    }

    fn try_charge(&self, client: &str) -> bool {
        let mut map = self.quotas.lock();
        if !map.contains_key(client) {
            match self.config.default_client_quota {
                Some(quota) => {
                    map.insert(client.to_owned(), quota);
                }
                None => return true, // unlimited
            }
        }
        let Some(remaining) = map.get_mut(client) else {
            // Unreachable in practice (the entry was ensured above), but
            // a missing entry must not panic the submission path; treat
            // it as unlimited rather than killing the request.
            return true;
        };
        if *remaining == 0 {
            false
        } else {
            *remaining -= 1;
            true
        }
    }

    fn refund(&self, client: &str) {
        if let Some(remaining) = self.quotas.lock().get_mut(client) {
            *remaining += 1;
        }
    }
}

/// Closes the queue when dropped, so workers always see shutdown even if
/// the driver panics (otherwise the scope would join forever).
struct CloseOnDrop<'q, T>(&'q BoundedQueue<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Runs a scheduler: spawns `config.workers` threads executing `handler`
/// over submitted jobs, calls `driver` with the submission handle, and
/// returns the driver's value once all accepted jobs have drained.
pub fn serve<J, R, T, F, D>(
    config: &SchedulerConfig,
    handler: F,
    driver: D,
) -> Result<T, ServiceError>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
    D: FnOnce(&SchedulerHandle<'_, J, R>) -> T,
{
    if config.workers == 0 {
        return Err(ServiceError::NoWorkers);
    }
    let queue: BoundedQueue<Envelope<J, R>> = BoundedQueue::new(config.queue_capacity);
    let metrics = ServiceMetrics::default();
    let quotas: Mutex<HashMap<String, u64>> =
        Mutex::new(config.client_quotas.iter().cloned().collect());

    let out = std::thread::scope(|scope| {
        let close_guard = CloseOnDrop(&queue);
        for _ in 0..config.workers {
            scope.spawn(|| worker_loop(&queue, &metrics, &handler));
        }
        let handle = SchedulerHandle {
            queue: &queue,
            metrics: &metrics,
            quotas: &quotas,
            config,
        };
        let out = driver(&handle);
        drop(close_guard); // close now so workers drain and the scope joins
        out
    });
    Ok(out)
}

fn worker_loop<J, R, F>(queue: &BoundedQueue<Envelope<J, R>>, metrics: &ServiceMetrics, handler: &F)
where
    F: Fn(J) -> R,
{
    while let Some(envelope) = queue.pop() {
        let Envelope {
            job,
            reply,
            submitted_at,
            deadline,
        } = envelope;
        metrics.on_dequeued(submitted_at.elapsed());
        // Deadline-aware admission: work whose caller has already given
        // up is dropped here, before it can occupy the worker.
        if let Some(deadline) = deadline {
            // sofya: allow(determinism) — deadline shedding is wall-clock by contract
            if Instant::now() >= deadline {
                metrics.on_query_shed();
                let _ = reply.send(JobOutcome::Shed);
                continue;
            }
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| handler(job))) {
            Ok(result) => {
                metrics.on_completed(submitted_at.elapsed());
                let _ = reply.send(JobOutcome::Completed(result));
            }
            Err(payload) => {
                metrics.on_panicked();
                let _ = reply.send(JobOutcome::Panicked(panic_message(payload.as_ref())));
            }
        }
    }
}

/// Runs a fixed batch through a pool of `workers` threads and returns the
/// results in submission order — the common harness shape (one job per
/// relation, per seed, …). The queue is sized to the batch and quotas are
/// off, so no submission is ever rejected; a worker panic is re-raised on
/// the caller's thread, because a batch harness has no partial-result
/// story (services that do should drive [`serve`] directly, as
/// [`crate::AlignmentService`] does).
pub fn run_batch<J, R, F>(workers: usize, jobs: Vec<J>, handler: F) -> Result<Vec<R>, ServiceError>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let config = SchedulerConfig::for_batch(workers, jobs.len());
    serve(&config, handler, |handle| {
        let tickets: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                handle
                    .submit("batch", job)
                    // sofya: allow(panic_path) — offline batch harness; queue is sized to the batch and quotas are off
                    .unwrap_or_else(|_| unreachable!("queue sized to the batch, quotas off"))
            })
            .collect();
        tickets
            .into_iter()
            .map(|ticket| match ticket.wait() {
                JobOutcome::Completed(result) => result,
                // sofya: allow(panic_path) — the batch harness re-raises contained worker panics by documented contract
                JobOutcome::Panicked(msg) => panic!("scheduler worker panicked: {msg}"),
                // sofya: allow(panic_path) — batch jobs carry no deadline, Shed cannot occur
                JobOutcome::Shed => unreachable!("batch jobs carry no deadline"),
            })
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn zero_workers_is_a_config_error() {
        let config = SchedulerConfig {
            workers: 0,
            ..SchedulerConfig::default()
        };
        let err = serve(&config, |x: u64| x, |_| ()).unwrap_err();
        assert_eq!(err, ServiceError::NoWorkers);
        assert!(err.to_string().contains("zero workers"));
    }

    #[test]
    fn jobs_complete_and_metrics_count() {
        let config = SchedulerConfig::for_batch(2, 8);
        let sum = serve(
            &config,
            |x: u64| x * 2,
            |handle| {
                let tickets: Vec<_> = (0..8)
                    .map(|i| handle.submit("c", i).expect("queue sized for batch"))
                    .collect();
                let total: u64 = tickets
                    .into_iter()
                    .map(|t| match t.wait() {
                        JobOutcome::Completed(v) => v,
                        other => panic!("unexpected outcome: {other:?}"),
                    })
                    .sum();
                assert_eq!(handle.metrics().report().completed, 8);
                assert_eq!(handle.metrics().queue_depth(), 0);
                total
            },
        )
        .unwrap();
        assert_eq!(sum, 2 * (0..8).sum::<u64>());
    }

    /// Queue-full rejection: one worker is parked on a gate, the queue
    /// holds one pending job, so a third submission must be rejected with
    /// the retry hint — and succeed after the gate opens.
    #[test]
    fn full_queue_rejects_with_retry_after() {
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 1,
            retry_after: Duration::from_micros(100),
            ..SchedulerConfig::default()
        };
        let (gate_tx, gate_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        let gate = Mutex::new((Some(gate_rx), started_tx));
        serve(
            &config,
            |block: bool| {
                if block {
                    let (rx, started) = {
                        let mut g = gate.lock();
                        (g.0.take().unwrap(), g.1.clone())
                    };
                    started.send(()).unwrap();
                    rx.recv().unwrap();
                }
            },
            |handle| {
                let t1 = handle.submit("c", true).expect("accepted");
                started_rx.recv().unwrap(); // worker is now parked on job 1
                let t2 = handle.submit("c", false).expect("fits the queue");
                let rejected = handle.submit("c", false).expect_err("queue is full");
                assert_eq!(
                    rejected.error,
                    SubmitError::QueueFull {
                        retry_after: Duration::from_micros(100)
                    }
                );
                assert_eq!(handle.metrics().report().rejected_full, 1);
                gate_tx.send(()).unwrap(); // release the worker
                                           // The backpressure loop now gets the job through.
                let t3 = handle
                    .submit_with_backpressure("c", false)
                    .expect("retry succeeds once the queue drains");
                for t in [t1, t2, t3] {
                    assert!(matches!(t.wait(), JobOutcome::Completed(())));
                }
            },
        )
        .unwrap();
    }

    /// Quota exhaustion mid-session: the third request of a 2-budget
    /// client is rejected while other clients keep going, and the
    /// rejection does not consume queue capacity.
    #[test]
    fn quota_exhausts_mid_session_per_client() {
        let config = SchedulerConfig {
            workers: 2,
            queue_capacity: 16,
            client_quotas: vec![("bounded".into(), 2)],
            ..SchedulerConfig::default()
        };
        serve(
            &config,
            |x: u64| x,
            |handle| {
                let a = handle.submit("bounded", 1).expect("1st within quota");
                let b = handle.submit("bounded", 2).expect("2nd within quota");
                let rejected = handle.submit("bounded", 3).expect_err("3rd over quota");
                assert_eq!(
                    rejected.error,
                    SubmitError::QuotaExhausted {
                        client: "bounded".into()
                    }
                );
                assert_eq!(handle.remaining_quota("bounded"), Some(0));
                // Unlimited clients are unaffected.
                let c = handle.submit("other", 4).expect("no quota for others");
                assert_eq!(handle.remaining_quota("other"), None);
                for t in [a, b, c] {
                    assert!(matches!(t.wait(), JobOutcome::Completed(_)));
                }
                assert_eq!(handle.metrics().report().rejected_quota, 1);
            },
        )
        .unwrap();
    }

    #[test]
    fn default_quota_applies_to_unknown_clients() {
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
            default_client_quota: Some(1),
            ..SchedulerConfig::default()
        };
        serve(
            &config,
            |x: u64| x,
            |handle| {
                let t = handle.submit("anyone", 1).expect("first is free");
                assert!(matches!(
                    handle.submit("anyone", 2).unwrap_err().error,
                    SubmitError::QuotaExhausted { .. }
                ));
                assert!(matches!(t.wait(), JobOutcome::Completed(1)));
            },
        )
        .unwrap();
    }

    /// Worker panic containment: a panicking session reports
    /// `Panicked` to its submitter, the pool keeps serving later jobs,
    /// and no lock is poisoned.
    #[test]
    fn panicking_job_does_not_poison_the_pool() {
        let config = SchedulerConfig::for_batch(2, 8);
        let completed = AtomicU64::new(0);
        serve(
            &config,
            |x: u64| {
                if x == 13 {
                    panic!("boom on {x}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                x
            },
            |handle| {
                let bad = handle.submit("c", 13).unwrap();
                match bad.wait() {
                    JobOutcome::Panicked(msg) => assert!(msg.contains("boom"), "{msg}"),
                    other => panic!("expected a contained panic, got {other:?}"),
                }
                // The pool is still fully operational afterwards.
                let tickets: Vec<_> = (0..6).map(|i| handle.submit("c", i).unwrap()).collect();
                for t in tickets {
                    assert!(matches!(t.wait(), JobOutcome::Completed(_)));
                }
                let report = handle.metrics().report();
                assert_eq!(report.panicked, 1);
                assert_eq!(report.completed, 6);
            },
        )
        .unwrap();
    }

    /// Even with every worker panicking once, the scope still joins and
    /// `serve` returns (regression guard for shutdown deadlocks).
    #[test]
    fn all_workers_panicking_still_drains_and_returns() {
        let config = SchedulerConfig::for_batch(4, 16);
        let out = serve(
            &config,
            |_: u64| panic!("every job dies"),
            |handle| {
                let tickets: Vec<_> = (0..8).map(|i| handle.submit("c", i).unwrap()).collect();
                tickets
                    .into_iter()
                    .map(JobTicket::wait)
                    .filter(|o| matches!(o, JobOutcome::Panicked(_)))
                    .count()
            },
        )
        .unwrap();
        assert_eq!(out, 8);
    }

    /// Deadline-aware admission: a job whose deadline passes while it is
    /// queued behind a slow one is shed at dequeue — the handler never
    /// runs for it — while an undeadlined job behind it completes.
    #[test]
    fn expired_queued_jobs_are_shed_not_executed() {
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 8,
            ..SchedulerConfig::default()
        };
        let (gate_tx, gate_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        let gate = Mutex::new((Some(gate_rx), started_tx));
        let ran = AtomicU64::new(0);
        serve(
            &config,
            |block: bool| {
                if block {
                    let (rx, started) = {
                        let mut g = gate.lock();
                        (g.0.take().unwrap(), g.1.clone())
                    };
                    started.send(()).unwrap();
                    rx.recv().unwrap();
                } else {
                    ran.fetch_add(1, Ordering::Relaxed);
                }
            },
            |handle| {
                let t1 = handle.submit("c", true).unwrap();
                started_rx.recv().unwrap(); // worker parked on job 1
                                            // Queued behind it: one already-expired job, one without
                                            // a deadline.
                let expired = handle
                    .submit_with_deadline("c", false, Some(Instant::now()))
                    .unwrap();
                let healthy = handle.submit("c", false).unwrap();
                gate_tx.send(()).unwrap();
                assert!(matches!(expired.wait(), JobOutcome::Shed));
                assert!(matches!(healthy.wait(), JobOutcome::Completed(())));
                assert!(matches!(t1.wait(), JobOutcome::Completed(())));
                assert_eq!(ran.load(Ordering::Relaxed), 1, "shed job never ran");
                let report = handle.metrics().report();
                assert_eq!(report.queries_shed, 1);
                // A shed job still counts as dequeued, not completed.
                assert_eq!(report.completed, 2);
            },
        )
        .unwrap();
    }

    /// A future deadline that has not passed does not shed.
    #[test]
    fn unexpired_deadlines_execute_normally() {
        let config = SchedulerConfig::for_batch(1, 4);
        serve(
            &config,
            |x: u64| x + 1,
            |handle| {
                let t = handle
                    .submit_with_deadline("c", 1, Some(Instant::now() + Duration::from_secs(60)))
                    .unwrap();
                assert!(matches!(t.wait(), JobOutcome::Completed(2)));
                assert_eq!(handle.metrics().report().queries_shed, 0);
            },
        )
        .unwrap();
    }

    #[test]
    fn queue_full_refunds_quota() {
        let config = SchedulerConfig {
            workers: 1,
            queue_capacity: 1,
            client_quotas: vec![("c".into(), 3)],
            retry_after: Duration::from_micros(50),
            ..SchedulerConfig::default()
        };
        let (gate_tx, gate_rx) = channel::<()>();
        let (started_tx, started_rx) = channel::<()>();
        let gate = Mutex::new((Some(gate_rx), started_tx));
        serve(
            &config,
            |block: bool| {
                if block {
                    let (rx, started) = {
                        let mut g = gate.lock();
                        (g.0.take().unwrap(), g.1.clone())
                    };
                    started.send(()).unwrap();
                    rx.recv().unwrap();
                }
            },
            |handle| {
                let t1 = handle.submit("c", true).unwrap();
                started_rx.recv().unwrap();
                let t2 = handle.submit("c", false).unwrap();
                // Quota now 1; a queue-full rejection must refund it.
                assert!(matches!(
                    handle.submit("c", false).unwrap_err().error,
                    SubmitError::QueueFull { .. }
                ));
                assert_eq!(handle.remaining_quota("c"), Some(1));
                gate_tx.send(()).unwrap();
                let t3 = handle.submit_with_backpressure("c", false).unwrap();
                assert_eq!(handle.remaining_quota("c"), Some(0));
                for t in [t1, t2, t3] {
                    assert!(matches!(t.wait(), JobOutcome::Completed(())));
                }
            },
        )
        .unwrap();
    }
}
