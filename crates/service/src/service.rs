//! The alignment service: session-cached relation alignment behind the
//! scheduler.
//!
//! One [`AlignmentService`] wraps a shared [`AlignmentSession`] (the
//! paper's query-time contract: first request for a relation pays the
//! sampling cost, later ones reuse the mined rules) and pushes every
//! request through the bounded-queue scheduler, so a burst of clients
//! gets worker-pool parallelism, per-client quotas, and backpressure
//! instead of unbounded thread spawn.
//!
//! When reading from a live [`sofya_endpoint::SnapshotStore`], hand the
//! service **pinned** views ([`sofya_endpoint::ConcurrentEndpoint::pinned`])
//! rather than the per-query-fresh endpoint: an alignment issues
//! *dependent* query sequences (count → offset → page), and pinning keeps
//! each sequence on one snapshot even while the writer keeps publishing.

use crate::metrics::MetricsReport;
use crate::scheduler::{serve, JobOutcome, SchedulerConfig, ServiceError, SubmitError};
use sofya_core::{AlignError, AlignerConfig, AlignmentSession, SubsumptionRule};
use sofya_endpoint::Endpoint;
use std::time::{Duration, Instant};

/// One client request: align `relation` on behalf of `client` (the quota
/// / accounting key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentRequest {
    /// Quota and accounting key.
    pub client: String,
    /// Target relation IRI to align.
    pub relation: String,
}

impl AlignmentRequest {
    /// Convenience constructor.
    pub fn new(client: impl Into<String>, relation: impl Into<String>) -> Self {
        Self {
            client: client.into(),
            relation: relation.into(),
        }
    }
}

/// Why one request produced no rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceFailure {
    /// The aligner itself failed.
    Align(AlignError),
    /// The scheduler rejected the request (quota; or queue-full if the
    /// caller opted out of the backpressure retry loop).
    Rejected(SubmitError),
    /// The handler panicked; the panic was contained to this request.
    Panicked(String),
}

impl std::fmt::Display for ServiceFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceFailure::Align(e) => write!(f, "alignment failed: {e}"),
            ServiceFailure::Rejected(e) => write!(f, "request rejected: {e}"),
            ServiceFailure::Panicked(msg) => write!(f, "alignment worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServiceFailure {}

/// The outcome of one scheduled batch.
#[derive(Debug)]
pub struct AlignmentBatchOutcome {
    /// Per-request results, in submission order.
    pub responses: Vec<Result<Vec<SubsumptionRule>, ServiceFailure>>,
    /// Service metrics accumulated over the batch.
    pub metrics: MetricsReport,
    /// Wall-clock duration of the batch.
    pub elapsed: Duration,
}

impl AlignmentBatchOutcome {
    /// Completed requests per second for this batch.
    pub fn requests_per_sec(&self) -> f64 {
        self.metrics.throughput_per_sec(self.elapsed)
    }
}

/// A multi-threaded alignment service over two endpoints.
///
/// The session cache is owned by the service, so a relation aligned in
/// one batch is free in the next — construct a fresh service to reset it.
pub struct AlignmentService<'a> {
    session: AlignmentSession<'a>,
    scheduler: SchedulerConfig,
    /// Optional probe reporting how stale the read snapshot is (wired to
    /// [`sofya_endpoint::ConcurrentEndpoint::snapshot_age`] when the
    /// service reads from published snapshots).
    age_probe: Option<Box<dyn Fn() -> Duration + Sync + 'a>>,
}

impl<'a> AlignmentService<'a> {
    /// Creates a service aligning `target`'s relations against `source`,
    /// with default scheduler knobs.
    pub fn new(source: &'a dyn Endpoint, target: &'a dyn Endpoint, config: AlignerConfig) -> Self {
        Self {
            session: AlignmentSession::new(source, target, config),
            scheduler: SchedulerConfig::default(),
            age_probe: None,
        }
    }

    /// Overrides the scheduler configuration.
    pub fn with_scheduler(mut self, scheduler: SchedulerConfig) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Installs a snapshot-age probe, sampled once per completed request
    /// into the metrics' staleness gauge.
    pub fn with_snapshot_age_probe(mut self, probe: impl Fn() -> Duration + Sync + 'a) -> Self {
        self.age_probe = Some(Box::new(probe));
        self
    }

    /// The scheduler configuration in effect.
    pub fn scheduler(&self) -> &SchedulerConfig {
        &self.scheduler
    }

    /// The underlying session (to inspect or invalidate cached rules).
    pub fn session(&self) -> &AlignmentSession<'a> {
        &self.session
    }

    /// Schedules `requests` across the worker pool and waits for all of
    /// them. Queue-full backpressure is absorbed with the retry-after
    /// loop (the batch caller has nowhere better to shed load to); quota
    /// rejections surface per request.
    pub fn run_batch(
        &self,
        requests: &[AlignmentRequest],
    ) -> Result<AlignmentBatchOutcome, ServiceError> {
        // sofya: allow(determinism) — batch wall-time is a reported metric, never alignment state
        let started = Instant::now();
        let (responses, metrics) = serve(
            &self.scheduler,
            |relation: String| {
                let rules = self.session.rules_for(&relation);
                // The handler has no metrics access, so the sampled
                // snapshot age rides back on the return value and the
                // driver records it (last write wins — it's a gauge).
                let age = self.age_probe.as_ref().map(|probe| probe());
                (rules, age)
            },
            |handle| {
                let tickets: Vec<_> = requests
                    .iter()
                    .map(|req| handle.submit_with_backpressure(&req.client, req.relation.clone()))
                    .collect();
                let responses: Vec<Result<Vec<SubsumptionRule>, ServiceFailure>> = tickets
                    .into_iter()
                    .map(|ticket| match ticket {
                        Ok(ticket) => match ticket.wait() {
                            JobOutcome::Completed((rules, age)) => {
                                if let Some(age) = age {
                                    handle.metrics().record_snapshot_age(age);
                                }
                                rules.map_err(ServiceFailure::Align)
                            }
                            JobOutcome::Panicked(msg) => Err(ServiceFailure::Panicked(msg)),
                            JobOutcome::Shed => {
                                // sofya: allow(panic_path) — alignment requests carry no deadline, Shed cannot occur
                                unreachable!("alignment requests are submitted without a deadline")
                            }
                        },
                        Err(error) => Err(ServiceFailure::Rejected(error)),
                    })
                    .collect();
                let metrics = handle.metrics().report();
                (responses, metrics)
            },
        )?;
        Ok(AlignmentBatchOutcome {
            responses,
            metrics,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofya_endpoint::{LocalEndpoint, SnapshotStore};
    use sofya_rdf::{Term, TripleStore};

    const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";

    fn stores() -> (TripleStore, TripleStore) {
        let mut yago = TripleStore::new();
        let mut dbp = TripleStore::new();
        for i in 0..8 {
            let (py, pd) = (format!("y:p{i}"), format!("d:P{i}"));
            let (cy, cd) = (format!("y:c{i}"), format!("d:C{i}"));
            yago.insert_terms(&Term::iri(&py), &Term::iri("y:born"), &Term::iri(&cy));
            yago.insert_terms(&Term::iri(&py), &Term::iri("y:lives"), &Term::iri(&cy));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri("d:birthPlace"), &Term::iri(&cd));
            yago.insert_terms(&Term::iri(&py), &Term::iri(SA), &Term::iri(&pd));
            yago.insert_terms(&Term::iri(&cy), &Term::iri(SA), &Term::iri(&cd));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri(SA), &Term::iri(&py));
            dbp.insert_terms(&Term::iri(&cd), &Term::iri(SA), &Term::iri(&cy));
        }
        (dbp, yago)
    }

    #[test]
    fn batch_aligns_and_caches_across_requests() {
        let (dbp, yago) = stores();
        let source = LocalEndpoint::new("dbp", dbp);
        let target = LocalEndpoint::new("yago", yago);
        let service = AlignmentService::new(&source, &target, AlignerConfig::paper_defaults(1))
            .with_scheduler(SchedulerConfig::for_batch(2, 8));
        let requests = vec![
            AlignmentRequest::new("alice", "y:born"),
            AlignmentRequest::new("bob", "y:lives"),
            AlignmentRequest::new("alice", "y:born"), // session cache hit
        ];
        let out = service.run_batch(&requests).unwrap();
        assert_eq!(out.responses.len(), 3);
        let born = out.responses[0].as_ref().unwrap();
        assert!(born.iter().any(|r| r.premise == "d:birthPlace"));
        assert_eq!(out.responses[2].as_ref().unwrap(), born);
        assert_eq!(out.metrics.completed, 3);
        assert!(out.requests_per_sec() > 0.0);
        assert_eq!(service.session().cached_relations().len(), 2);
    }

    #[test]
    fn per_client_quota_rejects_but_batch_continues() {
        let (dbp, yago) = stores();
        let source = LocalEndpoint::new("dbp", dbp);
        let target = LocalEndpoint::new("yago", yago);
        let service = AlignmentService::new(&source, &target, AlignerConfig::paper_defaults(1))
            .with_scheduler(SchedulerConfig {
                workers: 2,
                queue_capacity: 8,
                client_quotas: vec![("greedy".into(), 1)],
                ..SchedulerConfig::default()
            });
        let requests = vec![
            AlignmentRequest::new("greedy", "y:born"),
            AlignmentRequest::new("greedy", "y:lives"), // over quota
            AlignmentRequest::new("modest", "y:lives"),
        ];
        let out = service.run_batch(&requests).unwrap();
        assert!(out.responses[0].is_ok());
        assert!(matches!(
            out.responses[1],
            Err(ServiceFailure::Rejected(SubmitError::QuotaExhausted { .. }))
        ));
        assert!(out.responses[2].is_ok());
        assert_eq!(out.metrics.rejected_quota, 1);
    }

    #[test]
    fn snapshot_age_probe_feeds_the_staleness_gauge() {
        let (dbp, yago) = stores();
        let source_writer = SnapshotStore::new(dbp);
        let target_writer = SnapshotStore::new(yago);
        let source = source_writer.reader("dbp");
        let target = target_writer.reader("yago");
        let service = AlignmentService::new(&source, &target, AlignerConfig::paper_defaults(1))
            .with_scheduler(SchedulerConfig::for_batch(2, 4))
            .with_snapshot_age_probe(|| source.snapshot_age());
        let out = service
            .run_batch(&[AlignmentRequest::new("c", "y:born")])
            .unwrap();
        assert!(out.responses[0].is_ok());
        assert!(out.metrics.snapshot_age_ns > 0);
    }

    #[test]
    fn zero_worker_service_is_an_error() {
        let (dbp, yago) = stores();
        let source = LocalEndpoint::new("dbp", dbp);
        let target = LocalEndpoint::new("yago", yago);
        let service = AlignmentService::new(&source, &target, AlignerConfig::paper_defaults(1))
            .with_scheduler(SchedulerConfig {
                workers: 0,
                ..SchedulerConfig::default()
            });
        assert_eq!(service.run_batch(&[]).unwrap_err(), ServiceError::NoWorkers);
    }
}
