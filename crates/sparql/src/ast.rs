//! Abstract syntax tree for the supported SPARQL subset.

use sofya_rdf::Term;

/// A parsed query: either `SELECT` or `ASK`.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// A `SELECT` query.
    Select(SelectQuery),
    /// An `ASK` query; `true` iff the pattern has at least one solution.
    Ask(GroupGraphPattern),
}

/// A `SELECT` query with its solution modifiers.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// What to project.
    pub projection: Projection,
    /// Whether `DISTINCT` was specified.
    pub distinct: bool,
    /// The `WHERE` clause.
    pub pattern: GroupGraphPattern,
    /// `ORDER BY` keys, applied in sequence.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
    /// `OFFSET`, if present.
    pub offset: Option<usize>,
}

/// The projection part of a `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *` — all variables in order of first appearance.
    Star,
    /// `SELECT ?a ?b …`.
    Vars(Vec<String>),
    /// `SELECT (COUNT(*) AS ?c)` or `(COUNT(DISTINCT ?v) AS ?c)`.
    Count {
        /// Counted variable; `None` means `COUNT(*)`.
        var: Option<String>,
        /// Whether `DISTINCT` appears inside the aggregate.
        distinct: bool,
        /// The output variable name (after `AS`).
        alias: String,
    },
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Variable to sort by.
    pub var: String,
    /// `true` for `DESC`.
    pub descending: bool,
}

/// A group graph pattern: a basic graph pattern plus filters, `UNION`
/// blocks, and `OPTIONAL` extensions.
///
/// Evaluation order (documented subset semantics): the basic pattern is
/// joined first; each `UNION` block then joins every solution with each
/// of its branches (concatenating the per-branch results); each
/// `OPTIONAL` left-joins; filters whose variables are bound by the basic
/// pattern run during the join, the rest run at the end of the group.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GroupGraphPattern {
    /// Triple patterns, joined conjunctively.
    pub triples: Vec<TriplePatternAst>,
    /// Filter expressions, all of which must evaluate to true.
    pub filters: Vec<Expr>,
    /// `UNION` blocks; each entry is the list of alternative branches.
    /// A single-branch entry is a plain nested group (an inner join).
    pub unions: Vec<Vec<GroupGraphPattern>>,
    /// `OPTIONAL { … }` extensions, left-joined in order.
    pub optionals: Vec<GroupGraphPattern>,
}

/// A triple pattern over [`NodePattern`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePatternAst {
    /// Subject position.
    pub s: NodePattern,
    /// Predicate position (variables allowed).
    pub p: NodePattern,
    /// Object position.
    pub o: NodePattern,
}

/// One position of a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum NodePattern {
    /// A variable, by name (without `?`).
    Var(String),
    /// A constant term.
    Term(Term),
}

impl NodePattern {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            NodePattern::Var(v) => Some(v),
            NodePattern::Term(_) => None,
        }
    }
}

/// Comparison operators in filter expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Built-in functions usable in filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `BOUND(?v)`
    Bound,
    /// `STR(x)`
    Str,
    /// `LANG(x)`
    Lang,
    /// `DATATYPE(x)`
    Datatype,
    /// `ISIRI(x)`
    IsIri,
    /// `ISLITERAL(x)`
    IsLiteral,
    /// `ISBLANK(x)`
    IsBlank,
    /// `STRSTARTS(x, y)`
    StrStarts,
    /// `STRENDS(x, y)`
    StrEnds,
    /// `CONTAINS(x, y)`
    Contains,
    /// `REGEX(x, pattern)` — anchored-substring dialect (see crate docs).
    Regex,
}

/// A filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Constant term (IRI or literal).
    Const(Term),
    /// Binary comparison.
    Compare(CompareOp, Box<Expr>, Box<Expr>),
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Built-in function call.
    Call(Builtin, Vec<Expr>),
    /// `EXISTS { … }` (`negated` for `NOT EXISTS`).
    Exists {
        /// The nested pattern.
        pattern: GroupGraphPattern,
        /// Whether this is `NOT EXISTS`.
        negated: bool,
    },
}

impl Expr {
    /// Collects the free variables of the expression (excluding those that
    /// appear only inside `EXISTS` blocks, which are evaluated with their
    /// own scope seeded from the outer binding).
    pub fn free_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(v) => out.push(v),
            Expr::Const(_) => {}
            Expr::Compare(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Not(inner) => inner.free_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::Exists { .. } => {}
        }
    }
}

/// All variables appearing in a pattern — including `UNION` branches and
/// `OPTIONAL` extensions, but not `EXISTS` filter bodies (those are
/// scoped locally) — in order of first appearance.
pub fn pattern_variables(pattern: &GroupGraphPattern) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    collect_pattern_vars(pattern, &mut vars);
    vars
}

/// Appends the pattern's variables (recursing into unions/optionals) to
/// `vars`, skipping duplicates.
pub fn collect_pattern_vars(pattern: &GroupGraphPattern, vars: &mut Vec<String>) {
    for tp in &pattern.triples {
        for node in [&tp.s, &tp.p, &tp.o] {
            if let NodePattern::Var(v) = node {
                if !vars.iter().any(|existing| existing == v) {
                    vars.push(v.clone());
                }
            }
        }
    }
    for block in &pattern.unions {
        for branch in block {
            collect_pattern_vars(branch, vars);
        }
    }
    for optional in &pattern.optionals {
        collect_pattern_vars(optional, vars);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_variables_in_first_appearance_order() {
        let pattern = GroupGraphPattern {
            triples: vec![
                TriplePatternAst {
                    s: NodePattern::Var("x".into()),
                    p: NodePattern::Term(Term::iri("p")),
                    o: NodePattern::Var("y".into()),
                },
                TriplePatternAst {
                    s: NodePattern::Var("y".into()),
                    p: NodePattern::Var("p".into()),
                    o: NodePattern::Var("x".into()),
                },
            ],
            filters: vec![],
            unions: vec![],
            optionals: vec![],
        };
        assert_eq!(pattern_variables(&pattern), vec!["x", "y", "p"]);
    }

    #[test]
    fn free_vars_ignores_exists_bodies() {
        let e = Expr::And(
            Box::new(Expr::Var("a".into())),
            Box::new(Expr::Exists {
                pattern: GroupGraphPattern::default(),
                negated: true,
            }),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["a"]);
    }

    #[test]
    fn node_pattern_as_var() {
        assert_eq!(NodePattern::Var("x".into()).as_var(), Some("x"));
        assert_eq!(NodePattern::Term(Term::iri("p")).as_var(), None);
    }
}
