//! Cooperative query budgets: deadlines, scan caps, and cancel tokens.
//!
//! A public endpoint needs a kill switch, not just quotas on query
//! count: a single pathological BGP can otherwise pin an evaluation
//! thread until it runs to completion. A [`QueryBudget`] bounds one
//! query's execution along three axes — wall-clock deadline, rows
//! scanned, and intermediate bindings held — plus an external
//! [`CancelToken`] so a server can abort in-flight work (drain, client
//! disconnect) without waiting for a timer.
//!
//! Enforcement is **cooperative**: the evaluator calls a cheap per-row
//! tick inside its scan loops. Row/binding caps are exact; the deadline
//! and the cancel token are polled every [`POLL_INTERVAL`] scanned rows
//! (an `Instant::now()` per row would dominate small queries), so a
//! cancelled or expired query unwinds within one poll interval of scan
//! work rather than instantly — bounded, not immediate. The unbudgeted
//! path pays a single predictable branch per row.

use crate::error::SparqlError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many scanned rows pass between deadline/cancel polls. Row and
/// binding caps are checked exactly; only the clock read and the token
/// load are amortised over this many rows.
pub const POLL_INTERVAL: u32 = 1024;

/// Why a budgeted query was stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetBreach {
    /// The wall-clock deadline passed.
    Deadline,
    /// The attached [`CancelToken`] was tripped.
    Cancelled,
    /// More rows were scanned than the budget allows.
    RowsScanned {
        /// The configured scan cap.
        limit: u64,
    },
    /// More intermediate bindings were held than the budget allows.
    Bindings {
        /// The configured binding cap.
        limit: usize,
    },
}

impl std::fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetBreach::Deadline => write!(f, "deadline exceeded"),
            BudgetBreach::Cancelled => write!(f, "cancelled"),
            BudgetBreach::RowsScanned { limit } => {
                write!(f, "scanned more than {limit} rows")
            }
            BudgetBreach::Bindings { limit } => {
                write!(f, "held more than {limit} intermediate bindings")
            }
        }
    }
}

/// A shared flag that aborts every query polling it. One token can be
/// attached to many budgets (a server trips one token to cancel all
/// in-flight work when its drain deadline passes).
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every query polling it unwinds with
    /// [`BudgetBreach::Cancelled`] within one poll interval. Idempotent,
    /// and never un-trips.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Execution limits for one query. `Default` is unlimited — every
/// existing entry point runs under an unlimited budget and pays only a
/// dead branch per scanned row.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    /// Absolute wall-clock deadline; polled every [`POLL_INTERVAL`] rows.
    pub deadline: Option<Instant>,
    /// Exact cap on rows scanned across all index ranges of the query.
    pub max_rows_scanned: Option<u64>,
    /// Exact cap on intermediate bindings held at any point.
    pub max_bindings: Option<usize>,
    /// External abort switch; polled every [`POLL_INTERVAL`] rows.
    pub cancel: Option<Arc<CancelToken>>,
}

impl QueryBudget {
    /// The no-op budget.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Whether every limit is absent (the tracker disables itself).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_rows_scanned.is_none()
            && self.max_bindings.is_none()
            && self.cancel.is_none()
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `limit` from now.
    pub fn with_time_limit(self, limit: Duration) -> Self {
        // sofya: allow(determinism) — deadline enforcement is wall-clock by contract; budgets never alter surviving results
        self.with_deadline(Instant::now() + limit)
    }

    /// Caps rows scanned.
    pub fn with_max_rows_scanned(mut self, max: u64) -> Self {
        self.max_rows_scanned = Some(max);
        self
    }

    /// Caps intermediate bindings held.
    pub fn with_max_bindings(mut self, max: usize) -> Self {
        self.max_bindings = Some(max);
        self
    }

    /// Attaches an external cancel token.
    pub fn with_cancel(mut self, token: Arc<CancelToken>) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Time left until the deadline (`None` when no deadline is set;
    /// zero once passed).
    pub fn remaining_time(&self) -> Option<Duration> {
        self.deadline
            // sofya: allow(determinism) — deadline enforcement is wall-clock by contract
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The polled checks: cancel token first (an explicit abort wins over
    /// a coincident expiry), then the deadline.
    pub fn check_expired(&self) -> Result<(), SparqlError> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(SparqlError::budget(BudgetBreach::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            // sofya: allow(determinism) — deadline enforcement is wall-clock by contract
            if Instant::now() >= deadline {
                return Err(SparqlError::budget(BudgetBreach::Deadline));
            }
        }
        Ok(())
    }

    /// The tighter of two budgets: earlier deadline, smaller caps. When
    /// both carry a cancel token, `self`'s wins (a budget polls one
    /// token; compose layers so the outermost token is the one that
    /// matters — the server's drain token is folded in last).
    pub fn merge(&self, other: &QueryBudget) -> QueryBudget {
        fn min_opt<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
        QueryBudget {
            deadline: min_opt(self.deadline, other.deadline),
            max_rows_scanned: min_opt(self.max_rows_scanned, other.max_rows_scanned),
            max_bindings: min_opt(self.max_bindings, other.max_bindings),
            cancel: self.cancel.clone().or_else(|| other.cancel.clone()),
        }
    }
}

/// Per-execution budget state threaded through the evaluator. Created
/// once per query; the disabled (unlimited) form reduces every check to
/// one branch.
pub(crate) struct BudgetTracker<'a> {
    budget: &'a QueryBudget,
    enabled: bool,
    scanned: u64,
    countdown: u32,
}

impl<'a> BudgetTracker<'a> {
    pub(crate) fn new(budget: &'a QueryBudget) -> Self {
        Self {
            budget,
            enabled: !budget.is_unlimited(),
            scanned: 0,
            countdown: POLL_INTERVAL,
        }
    }

    /// Checked once before execution starts, so an already-expired or
    /// already-cancelled query fails even on paths that never scan
    /// (index-shortcut counts, provably-empty plans).
    pub(crate) fn preflight(&self) -> Result<(), SparqlError> {
        if !self.enabled {
            return Ok(());
        }
        self.budget.check_expired()
    }

    /// The per-scanned-row tick: exact row-cap accounting, amortised
    /// deadline/cancel polling.
    #[inline]
    pub(crate) fn tick_scan(&mut self) -> Result<(), SparqlError> {
        if !self.enabled {
            return Ok(());
        }
        self.tick_scan_enabled()
    }

    fn tick_scan_enabled(&mut self) -> Result<(), SparqlError> {
        self.scanned += 1;
        if let Some(max) = self.budget.max_rows_scanned {
            if self.scanned > max {
                return Err(SparqlError::budget(BudgetBreach::RowsScanned {
                    limit: max,
                }));
            }
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = POLL_INTERVAL;
            self.budget.check_expired()?;
        }
        Ok(())
    }

    /// Exact check against the binding cap for a solution set about to
    /// hold `held` rows.
    pub(crate) fn check_bindings(&self, held: usize) -> Result<(), SparqlError> {
        if !self.enabled {
            return Ok(());
        }
        if let Some(max) = self.budget.max_bindings {
            if held > max {
                return Err(SparqlError::budget(BudgetBreach::Bindings { limit: max }));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_disables_the_tracker() {
        let budget = QueryBudget::unlimited();
        assert!(budget.is_unlimited());
        let mut t = BudgetTracker::new(&budget);
        t.preflight().unwrap();
        for _ in 0..10_000 {
            t.tick_scan().unwrap();
        }
        t.check_bindings(usize::MAX).unwrap();
    }

    #[test]
    fn row_cap_is_exact() {
        let budget = QueryBudget::unlimited().with_max_rows_scanned(5);
        let mut t = BudgetTracker::new(&budget);
        for _ in 0..5 {
            t.tick_scan().unwrap();
        }
        let err = t.tick_scan().unwrap_err();
        assert!(matches!(
            err,
            SparqlError::Budget {
                breach: BudgetBreach::RowsScanned { limit: 5 }
            }
        ));
    }

    #[test]
    fn binding_cap_is_exact() {
        let budget = QueryBudget::unlimited().with_max_bindings(3);
        let t = BudgetTracker::new(&budget);
        t.check_bindings(3).unwrap();
        assert!(t.check_bindings(4).is_err());
    }

    #[test]
    fn cancel_token_is_polled_within_one_interval() {
        let token = Arc::new(CancelToken::new());
        let budget = QueryBudget::unlimited().with_cancel(Arc::clone(&token));
        let mut t = BudgetTracker::new(&budget);
        token.cancel();
        assert!(token.is_cancelled());
        let mut failed_at = None;
        for i in 0..=u64::from(POLL_INTERVAL) {
            if t.tick_scan().is_err() {
                failed_at = Some(i);
                break;
            }
        }
        assert_eq!(failed_at, Some(u64::from(POLL_INTERVAL) - 1));
    }

    #[test]
    fn expired_deadline_fails_preflight() {
        let budget = QueryBudget::unlimited().with_deadline(Instant::now());
        let t = BudgetTracker::new(&budget);
        let err = t.preflight().unwrap_err();
        assert!(matches!(
            err,
            SparqlError::Budget {
                breach: BudgetBreach::Deadline
            }
        ));
        assert_eq!(budget.remaining_time(), Some(Duration::ZERO));
    }

    #[test]
    fn merge_takes_the_tighter_limits() {
        let now = Instant::now();
        let a = QueryBudget::unlimited()
            .with_deadline(now + Duration::from_secs(10))
            .with_max_rows_scanned(100);
        let b = QueryBudget::unlimited()
            .with_deadline(now + Duration::from_secs(5))
            .with_max_rows_scanned(500)
            .with_max_bindings(7);
        let merged = a.merge(&b);
        assert_eq!(merged.deadline, Some(now + Duration::from_secs(5)));
        assert_eq!(merged.max_rows_scanned, Some(100));
        assert_eq!(merged.max_bindings, Some(7));
    }

    #[test]
    fn cancellation_wins_over_a_coincident_deadline() {
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let budget = QueryBudget::unlimited()
            .with_deadline(Instant::now())
            .with_cancel(token);
        assert!(matches!(
            budget.check_expired().unwrap_err(),
            SparqlError::Budget {
                breach: BudgetBreach::Cancelled
            }
        ));
    }
}
