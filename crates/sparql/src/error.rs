//! Error type for SPARQL parsing and evaluation.

use crate::budget::BudgetBreach;
use std::fmt;

/// Errors raised while lexing, parsing, planning, or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error: unexpected character or unterminated token.
    Lex {
        /// Byte offset into the query string.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Syntax error during parsing.
    Parse {
        /// Human-readable description, including what was expected.
        message: String,
    },
    /// Semantic / evaluation error (e.g. type error in a FILTER).
    Eval {
        /// Description of the failure.
        message: String,
    },
    /// The query exceeded its [`crate::QueryBudget`] (deadline, scan
    /// cap, binding cap) or was cancelled. Unlike [`SparqlError::Eval`],
    /// this is **not** absorbed by FILTER error semantics — a killed
    /// query always surfaces this error, never a partial result.
    Budget {
        /// Which limit was breached.
        breach: BudgetBreach,
    },
}

impl SparqlError {
    /// Constructs a lexical error.
    pub fn lex(offset: usize, message: impl Into<String>) -> Self {
        SparqlError::Lex {
            offset,
            message: message.into(),
        }
    }

    /// Constructs a parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        SparqlError::Parse {
            message: message.into(),
        }
    }

    /// Constructs an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval {
            message: message.into(),
        }
    }

    /// Constructs a budget-breach error.
    pub fn budget(breach: BudgetBreach) -> Self {
        SparqlError::Budget { breach }
    }

    /// Whether this is a budget breach (used by layers that must keep
    /// cancellation errors out of SPARQL's error-absorbing contexts).
    pub fn is_budget(&self) -> bool {
        matches!(self, SparqlError::Budget { .. })
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { offset, message } => {
                write!(f, "SPARQL lexical error at byte {offset}: {message}")
            }
            SparqlError::Parse { message } => write!(f, "SPARQL syntax error: {message}"),
            SparqlError::Eval { message } => write!(f, "SPARQL evaluation error: {message}"),
            SparqlError::Budget { breach } => write!(f, "query budget exceeded: {breach}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::lex(4, "bad char")
            .to_string()
            .contains("byte 4"));
        assert!(SparqlError::parse("expected WHERE")
            .to_string()
            .contains("syntax"));
        assert!(SparqlError::eval("type error")
            .to_string()
            .contains("evaluation"));
        let budget = SparqlError::budget(BudgetBreach::Deadline);
        assert!(budget.to_string().contains("budget"));
        assert!(budget.is_budget());
        assert!(!SparqlError::parse("x").is_budget());
    }
}
