//! Error type for SPARQL parsing and evaluation.

use std::fmt;

/// Errors raised while lexing, parsing, planning, or evaluating a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical error: unexpected character or unterminated token.
    Lex {
        /// Byte offset into the query string.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// Syntax error during parsing.
    Parse {
        /// Human-readable description, including what was expected.
        message: String,
    },
    /// Semantic / evaluation error (e.g. type error in a FILTER).
    Eval {
        /// Description of the failure.
        message: String,
    },
}

impl SparqlError {
    /// Constructs a lexical error.
    pub fn lex(offset: usize, message: impl Into<String>) -> Self {
        SparqlError::Lex {
            offset,
            message: message.into(),
        }
    }

    /// Constructs a parse error.
    pub fn parse(message: impl Into<String>) -> Self {
        SparqlError::Parse {
            message: message.into(),
        }
    }

    /// Constructs an evaluation error.
    pub fn eval(message: impl Into<String>) -> Self {
        SparqlError::Eval {
            message: message.into(),
        }
    }
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { offset, message } => {
                write!(f, "SPARQL lexical error at byte {offset}: {message}")
            }
            SparqlError::Parse { message } => write!(f, "SPARQL syntax error: {message}"),
            SparqlError::Eval { message } => write!(f, "SPARQL evaluation error: {message}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::lex(4, "bad char")
            .to_string()
            .contains("byte 4"));
        assert!(SparqlError::parse("expected WHERE")
            .to_string()
            .contains("syntax"));
        assert!(SparqlError::eval("type error")
            .to_string()
            .contains("evaluation"));
    }
}
