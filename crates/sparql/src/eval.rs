//! Query evaluation: index nested-loop joins over the planned BGP.

use crate::ast::{Builtin, Projection, Query, SelectQuery};
use crate::budget::{BudgetTracker, QueryBudget};
use crate::error::SparqlError;
use crate::parser::parse_query;
use crate::plan::{GroupPlan, PExpr, PlanOptions, Slot};
use crate::solution::ResultSet;
use crate::value::Value;
use sofya_rdf::{Term, TermId, TriplePattern, TripleStore};

/// The outcome of executing an arbitrary query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Rows from a `SELECT`.
    Solutions(ResultSet),
    /// Answer of an `ASK`.
    Boolean(bool),
}

/// Parses and executes any supported query.
pub fn execute_query(store: &TripleStore, query: &str) -> Result<QueryOutcome, SparqlError> {
    execute_with_options(store, query, PlanOptions::default())
}

/// Parses and executes any supported query with explicit [`PlanOptions`]
/// (statistics-driven join ordering, or written-order evaluation).
pub fn execute_with_options(
    store: &TripleStore,
    query: &str,
    opts: PlanOptions<'_>,
) -> Result<QueryOutcome, SparqlError> {
    execute_ast_with_options(store, &parse_query(query)?, opts)
}

/// Executes an already-parsed query (the fast path for prepared queries:
/// no tokenizing, no parsing).
pub fn execute_ast(store: &TripleStore, query: &Query) -> Result<QueryOutcome, SparqlError> {
    execute_ast_with_options(store, query, PlanOptions::default())
}

/// Executes an already-parsed query with explicit [`PlanOptions`].
pub fn execute_ast_with_options(
    store: &TripleStore,
    query: &Query,
    opts: PlanOptions<'_>,
) -> Result<QueryOutcome, SparqlError> {
    execute_ast_budgeted(store, query, opts, &QueryBudget::unlimited())
}

/// Executes an already-parsed query under a [`QueryBudget`]: the
/// evaluator cooperatively checks the budget as it scans, so a cancelled
/// or expired query unwinds with [`SparqlError::Budget`] in bounded time
/// instead of running to completion.
pub fn execute_ast_budgeted(
    store: &TripleStore,
    query: &Query,
    opts: PlanOptions<'_>,
    budget: &QueryBudget,
) -> Result<QueryOutcome, SparqlError> {
    let mut tracker = BudgetTracker::new(budget);
    tracker.preflight()?;
    match query {
        Query::Select(select) => {
            let plan = GroupPlan::build_with(store, &select.pattern, &[], opts);
            Ok(QueryOutcome::Solutions(execute_select_planned_paged(
                store,
                select,
                &plan,
                None,
                None,
                &mut tracker,
            )?))
        }
        Query::Ask(pattern) => {
            let plan = GroupPlan::build_with(store, pattern, &[], opts);
            Ok(QueryOutcome::Boolean(execute_ask_planned(
                store,
                &plan,
                &mut tracker,
            )?))
        }
    }
}

/// A query compiled against one concrete (immutable) store: parsed once,
/// planned once. Re-executing skips both stages — the backing for
/// endpoint-level plan caches.
///
/// The embedded plan holds dictionary ids of *that* store; executing it
/// against a store whose dictionary differs yields garbage, so keep one
/// cache per store (the `LocalEndpoint` wrapper does).
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    inner: CompiledInner,
}

#[derive(Debug, Clone)]
enum CompiledInner {
    Select {
        query: Box<SelectQuery>,
        plan: GroupPlan,
    },
    Ask {
        plan: GroupPlan,
    },
}

/// Parses and plans `query` against `store` for repeated execution via
/// [`execute_compiled`].
pub fn compile_with_options(
    store: &TripleStore,
    query: &str,
    opts: PlanOptions<'_>,
) -> Result<CompiledQuery, SparqlError> {
    let inner = match parse_query(query)? {
        Query::Select(select) => CompiledInner::Select {
            plan: GroupPlan::build_with(store, &select.pattern, &[], opts),
            query: Box::new(select),
        },
        Query::Ask(pattern) => CompiledInner::Ask {
            plan: GroupPlan::build_with(store, &pattern, &[], opts),
        },
    };
    Ok(CompiledQuery { inner })
}

/// Plans an already-parsed (e.g. prepared-and-bound) query for repeated
/// execution. This is the backing for endpoint-level *prepared* plan
/// caches: the join order of a bound template does not depend on
/// `LIMIT`/`OFFSET`, so one compilation serves every page via
/// [`execute_compiled_paged`].
pub fn compile_ast_with_options(
    store: &TripleStore,
    query: &Query,
    opts: PlanOptions<'_>,
) -> CompiledQuery {
    let inner = match query {
        Query::Select(select) => CompiledInner::Select {
            plan: GroupPlan::build_with(store, &select.pattern, &[], opts),
            query: Box::new(select.clone()),
        },
        Query::Ask(pattern) => CompiledInner::Ask {
            plan: GroupPlan::build_with(store, pattern, &[], opts),
        },
    };
    CompiledQuery { inner }
}

/// Executes a compiled query against the store it was compiled for.
pub fn execute_compiled(
    store: &TripleStore,
    compiled: &CompiledQuery,
) -> Result<QueryOutcome, SparqlError> {
    execute_compiled_paged(store, compiled, None, None)
}

/// Executes a compiled query under a [`QueryBudget`] (see
/// [`execute_ast_budgeted`] for the cooperative-cancellation contract).
pub fn execute_compiled_budgeted(
    store: &TripleStore,
    compiled: &CompiledQuery,
    budget: &QueryBudget,
) -> Result<QueryOutcome, SparqlError> {
    execute_compiled_paged_budgeted(store, compiled, None, None, budget)
}

/// Executes a compiled query with a structural `LIMIT`/`OFFSET` override
/// (`None` keeps the compiled query's own modifier). The pagination of a
/// solution sequence never changes the plan, so cached compilations are
/// shared across all pages of a shape.
pub fn execute_compiled_paged(
    store: &TripleStore,
    compiled: &CompiledQuery,
    limit: Option<usize>,
    offset: Option<usize>,
) -> Result<QueryOutcome, SparqlError> {
    execute_compiled_paged_budgeted(store, compiled, limit, offset, &QueryBudget::unlimited())
}

/// Executes a compiled query with pagination overrides under a
/// [`QueryBudget`] (see [`execute_ast_budgeted`]).
pub fn execute_compiled_paged_budgeted(
    store: &TripleStore,
    compiled: &CompiledQuery,
    limit: Option<usize>,
    offset: Option<usize>,
    budget: &QueryBudget,
) -> Result<QueryOutcome, SparqlError> {
    let mut tracker = BudgetTracker::new(budget);
    tracker.preflight()?;
    match &compiled.inner {
        CompiledInner::Select { query, plan } => Ok(QueryOutcome::Solutions(
            execute_select_planned_paged(store, query, plan, limit, offset, &mut tracker)?,
        )),
        CompiledInner::Ask { plan } => {
            if limit.is_some() || offset.is_some() {
                return Err(SparqlError::eval(
                    "LIMIT/OFFSET cannot be applied to an ASK query",
                ));
            }
            Ok(QueryOutcome::Boolean(execute_ask_planned(
                store,
                plan,
                &mut tracker,
            )?))
        }
    }
}

/// Executes a planned ASK: a bare pattern set resolves through the flat
/// indexes without running the join at all (non-emptiness of the prefix
/// range).
fn execute_ask_planned(
    store: &TripleStore,
    plan: &GroupPlan,
    t: &mut BudgetTracker<'_>,
) -> Result<bool, SparqlError> {
    if let Some(n) = exact_pattern_count(store, plan) {
        return Ok(n > 0);
    }
    any_solution(store, plan, None, t)
}

/// Parses and executes a `SELECT` query.
pub fn execute(store: &TripleStore, query: &str) -> Result<ResultSet, SparqlError> {
    match execute_query(store, query)? {
        QueryOutcome::Solutions(rs) => Ok(rs),
        QueryOutcome::Boolean(_) => Err(SparqlError::eval("expected a SELECT query, found ASK")),
    }
}

/// Parses and executes an `ASK` query.
pub fn execute_ask(store: &TripleStore, query: &str) -> Result<bool, SparqlError> {
    match execute_query(store, query)? {
        QueryOutcome::Boolean(b) => Ok(b),
        QueryOutcome::Solutions(_) => Err(SparqlError::eval("expected an ASK query, found SELECT")),
    }
}

/// The exact row count of `plan`, when it can be read straight off the
/// store's indexes: no filters or sub-groups, and at most one triple
/// pattern whose variables are all distinct. `None` when the plan needs
/// the full join machinery. The empty pattern set contributes the single
/// empty solution μ0.
fn exact_pattern_count(store: &TripleStore, plan: &GroupPlan) -> Option<usize> {
    if plan.has_subgroups() || plan.filters_at.iter().any(|f| !f.is_empty()) {
        return None;
    }
    match plan.patterns.len() {
        0 => Some(1),
        1 => {
            let p = &plan.patterns[0];
            if p.is_unsatisfiable() {
                return Some(0);
            }
            // Repeated variables (`?x <p> ?x`) constrain matches beyond the
            // prefix range; fall back to the join.
            let mut vars: Vec<usize> = Vec::with_capacity(3);
            let mut consts: [Option<TermId>; 3] = [None; 3];
            for (slot, c) in [p.s, p.p, p.o].into_iter().zip(consts.iter_mut()) {
                match slot {
                    Slot::Var(i) => {
                        if vars.contains(&i) {
                            return None;
                        }
                        vars.push(i);
                    }
                    Slot::Const(id) => *c = id,
                }
            }
            Some(store.count_pattern(TriplePattern {
                s: consts[0],
                p: consts[1],
                o: consts[2],
            }))
        }
        _ => None,
    }
}

/// Executes a parsed `SELECT` query.
pub fn execute_select(store: &TripleStore, query: &SelectQuery) -> Result<ResultSet, SparqlError> {
    execute_select_with(store, query, PlanOptions::default())
}

/// The single-row result of an aggregate projection, with the effective
/// solution modifiers applied: `OFFSET ≥ 1` or `LIMIT 0` drop the row.
fn aggregate_row(
    limit: Option<usize>,
    offset: Option<usize>,
    alias: &str,
    count: usize,
) -> ResultSet {
    let survives = offset.unwrap_or(0) == 0 && limit.unwrap_or(usize::MAX) >= 1;
    let rows = if survives {
        vec![vec![Some(Term::integer(count as i64))]]
    } else {
        Vec::new()
    };
    ResultSet::new(vec![alias.to_owned()], rows)
}

/// Executes a parsed `SELECT` query with explicit [`PlanOptions`].
pub fn execute_select_with(
    store: &TripleStore,
    query: &SelectQuery,
    opts: PlanOptions<'_>,
) -> Result<ResultSet, SparqlError> {
    execute_select_budgeted(store, query, opts, &QueryBudget::unlimited())
}

/// Executes a parsed `SELECT` under a [`QueryBudget`] (see
/// [`execute_ast_budgeted`]).
pub fn execute_select_budgeted(
    store: &TripleStore,
    query: &SelectQuery,
    opts: PlanOptions<'_>,
    budget: &QueryBudget,
) -> Result<ResultSet, SparqlError> {
    let mut tracker = BudgetTracker::new(budget);
    tracker.preflight()?;
    let plan = GroupPlan::build_with(store, &query.pattern, &[], opts);
    execute_select_planned_paged(store, query, &plan, None, None, &mut tracker)
}

/// Executes a planned `SELECT` with optional `LIMIT`/`OFFSET` overrides
/// (`None` falls back to the query's own modifiers).
fn execute_select_planned_paged(
    store: &TripleStore,
    query: &SelectQuery,
    plan: &GroupPlan,
    limit_override: Option<usize>,
    offset_override: Option<usize>,
    t: &mut BudgetTracker<'_>,
) -> Result<ResultSet, SparqlError> {
    let limit = limit_override.or(query.limit);
    let offset = offset_override.or(query.offset);
    // COUNT over a bare pattern short-circuits through the index bounds:
    // no join, no binding materialisation.
    if let Projection::Count {
        var,
        distinct: false,
        alias,
    } = &query.projection
    {
        let var_always_bound = match var {
            None => true,
            Some(v) => plan
                .var_names
                .iter()
                .position(|name| name == v)
                .is_some_and(|idx| {
                    plan.patterns.iter().any(|p| {
                        [p.s, p.p, p.o]
                            .iter()
                            .any(|slot| matches!(slot, Slot::Var(i) if *i == idx))
                    })
                }),
        };
        if var_always_bound {
            if let Some(n) = exact_pattern_count(store, plan) {
                return Ok(aggregate_row(limit, offset, alias, n));
            }
        }
    }

    // Early-stop hint: when no DISTINCT / ORDER BY / aggregation /
    // subgroup is in play, we only ever need offset+limit raw rows.
    let early_stop = if !query.distinct
        && query.order_by.is_empty()
        && !plan.has_subgroups()
        && !matches!(query.projection, Projection::Count { .. })
    {
        limit.map(|l| l.saturating_add(offset.unwrap_or(0)))
    } else {
        None
    };

    let binding = vec![None; plan.var_names.len()];
    let bindings = eval_group(store, plan, binding, early_stop, t)?;

    // Aggregation short-circuits projection.
    if let Projection::Count {
        var,
        distinct,
        alias,
    } = &query.projection
    {
        let count = match var {
            None => bindings.len(),
            Some(v) => {
                let idx = plan
                    .var_names
                    .iter()
                    .position(|name| name == v)
                    .ok_or_else(|| SparqlError::eval(format!("COUNT of unknown variable ?{v}")))?;
                let values = bindings.iter().filter_map(|b| b[idx]);
                if *distinct {
                    let set: std::collections::BTreeSet<TermId> = values.collect();
                    set.len()
                } else {
                    values.count()
                }
            }
        };
        return Ok(aggregate_row(limit, offset, alias, count));
    }

    // Projection stays at the interned-id level for deduplication,
    // ordering, and pagination; terms are resolved (and cloned) only for
    // the rows that actually survive OFFSET/LIMIT.
    let projected_vars: Vec<String> = match &query.projection {
        Projection::Star => plan.var_names.clone(),
        Projection::Vars(vars) => vars.clone(),
        Projection::Count { .. } => unreachable!("handled above"),
    };
    let col_indices: Vec<Option<usize>> = projected_vars
        .iter()
        .map(|v| plan.var_names.iter().position(|name| name == v))
        .collect();

    let mut id_rows: Vec<Vec<Option<TermId>>> = bindings
        .iter()
        .map(|b| col_indices.iter().map(|ci| ci.and_then(|i| b[i])).collect())
        .collect();

    if query.distinct {
        // The dictionary is injective (one id per distinct term), so id
        // equality is term equality — no string keys needed.
        let mut seen = std::collections::BTreeSet::new();
        id_rows.retain(|row| seen.insert(row.clone()));
    }

    if !query.order_by.is_empty() {
        let key_indices: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .filter_map(|k| {
                projected_vars
                    .iter()
                    .position(|v| v == &k.var)
                    .map(|i| (i, k.descending))
            })
            .collect();
        let term_of = |cell: Option<TermId>| cell.map(|id| store.dict().resolve(id));
        id_rows.sort_by(|a, b| {
            for &(i, desc) in &key_indices {
                let ord = term_of(a[i]).cmp(&term_of(b[i]));
                let ord = if desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let rows: Vec<Vec<Option<Term>>> = id_rows
        .into_iter()
        .skip(offset.unwrap_or(0))
        .take(limit.unwrap_or(usize::MAX))
        .map(|row| {
            row.into_iter()
                .map(|cell| cell.map(|id| store.dict().resolve(id).clone()))
                .collect()
        })
        .collect();

    Ok(ResultSet::new(projected_vars, rows))
}

/// Whether the plan admits at least one solution (used by ASK and EXISTS).
fn any_solution(
    store: &TripleStore,
    plan: &GroupPlan,
    seed: Option<&[Option<TermId>]>,
    t: &mut BudgetTracker<'_>,
) -> Result<bool, SparqlError> {
    let mut binding = vec![None; plan.var_names.len()];
    if let Some(seed) = seed {
        binding[..seed.len()].copy_from_slice(seed);
    }
    let early_stop = if plan.has_subgroups() { None } else { Some(1) };
    let out = eval_group(store, plan, binding, early_stop, t)?;
    Ok(!out.is_empty())
}

/// Evaluates a full group: basic pattern join, then `UNION` blocks, then
/// `OPTIONAL` left-joins, then the group's post-filters.
fn eval_group(
    store: &TripleStore,
    plan: &GroupPlan,
    seed: Vec<Option<TermId>>,
    early_stop: Option<usize>,
    t: &mut BudgetTracker<'_>,
) -> Result<Vec<Vec<Option<TermId>>>, SparqlError> {
    let mut solutions = Vec::new();
    let mut binding = seed;
    collect_solutions(store, plan, 0, &mut binding, early_stop, &mut solutions, t)?;

    for block in &plan.unions {
        let mut next = Vec::new();
        for solution in &solutions {
            for branch in block {
                // Branch plans share the parent's variable table as a
                // prefix; the branch may bind additional variables.
                let mut seed = solution.clone();
                seed.resize(branch.var_names.len(), None);
                next.extend(eval_group(store, branch, seed, None, t)?);
                t.check_bindings(next.len())?;
            }
        }
        solutions = next;
    }

    for optional in &plan.optionals {
        let mut next = Vec::new();
        for solution in &solutions {
            let mut seed = solution.clone();
            seed.resize(optional.var_names.len(), None);
            let extended = eval_group(store, optional, seed, None, t)?;
            if extended.is_empty() {
                next.push(solution.clone());
            } else {
                next.extend(extended);
            }
            t.check_bindings(next.len())?;
        }
        solutions = next;
    }

    if !plan.post_filters.is_empty() {
        let mut kept = Vec::with_capacity(solutions.len());
        for solution in solutions {
            let mut pass = true;
            for filter in &plan.post_filters {
                if !filter_passes(store, filter, &solution, t)? {
                    pass = false;
                    break;
                }
            }
            if pass {
                kept.push(solution);
            }
        }
        solutions = kept;
    }

    // Sub-group bindings may be longer than the parent's table when
    // branches introduced EXISTS-local variables; truncate to the
    // parent's width so all rows agree.
    for solution in &mut solutions {
        solution.truncate(plan.var_names.len());
        solution.resize(plan.var_names.len(), None);
    }
    Ok(solutions)
}

/// Recursive index nested-loop join.
#[allow(clippy::too_many_arguments)]
fn collect_solutions(
    store: &TripleStore,
    plan: &GroupPlan,
    level: usize,
    binding: &mut Vec<Option<TermId>>,
    early_stop: Option<usize>,
    out: &mut Vec<Vec<Option<TermId>>>,
    t: &mut BudgetTracker<'_>,
) -> Result<(), SparqlError> {
    if early_stop.is_some_and(|lim| out.len() >= lim) {
        return Ok(());
    }
    // Filters scheduled at this level.
    for filter in &plan.filters_at[level] {
        if !filter_passes(store, filter, binding, t)? {
            return Ok(());
        }
    }
    if level == plan.patterns.len() {
        t.check_bindings(out.len() + 1)?;
        out.push(binding.clone());
        return Ok(());
    }

    let pattern = &plan.patterns[level];
    if pattern.is_unsatisfiable() {
        return Ok(());
    }

    let resolve = |slot: Slot, binding: &[Option<TermId>]| -> Option<TermId> {
        match slot {
            Slot::Const(id) => id,
            Slot::Var(i) => binding[i],
        }
    };
    let scan_pattern = TriplePattern {
        s: resolve(pattern.s, binding),
        p: resolve(pattern.p, binding),
        o: resolve(pattern.o, binding),
    };

    // Zero-allocation: the scan is a borrowed slice walk over the store's
    // flat indexes (it borrows only `store`, so mutating the binding
    // vector and recursing are both fine inside the loop). The budget
    // tick here is the cooperative kill switch: every scanned row is
    // charged, and the deadline/cancel token is polled every
    // [`crate::budget::POLL_INTERVAL`] rows.
    for triple in store.scan_range(scan_pattern) {
        t.tick_scan()?;
        let mut touched: [Option<usize>; 3] = [None; 3];
        if !bind_slot(pattern.s, triple.s, binding, &mut touched[0])
            || !bind_slot(pattern.p, triple.p, binding, &mut touched[1])
            || !bind_slot(pattern.o, triple.o, binding, &mut touched[2])
        {
            undo(binding, &touched);
            continue;
        }
        collect_solutions(store, plan, level + 1, binding, early_stop, out, t)?;
        undo(binding, &touched);
        if early_stop.is_some_and(|lim| out.len() >= lim) {
            return Ok(());
        }
    }
    Ok(())
}

/// Binds a variable slot to `id`, recording the write in `touched`.
/// Returns `false` on conflict with an existing binding (repeated variable
/// within one pattern, e.g. `?x <p> ?x`).
fn bind_slot(
    slot: Slot,
    id: TermId,
    binding: &mut [Option<TermId>],
    touched: &mut Option<usize>,
) -> bool {
    match slot {
        Slot::Const(_) => true,
        Slot::Var(i) => match binding[i] {
            Some(existing) => existing == id,
            None => {
                binding[i] = Some(id);
                *touched = Some(i);
                true
            }
        },
    }
}

fn undo(binding: &mut [Option<TermId>], touched: &[Option<usize>; 3]) {
    for t in touched.iter().flatten() {
        binding[*t] = None;
    }
}

/// Evaluates a filter; evaluation errors count as `false` per SPARQL.
/// Budget breaches are the one exception: absorbing a cancellation
/// raised inside an EXISTS sub-query would silently turn a killed query
/// into a partial result set, so they propagate.
fn filter_passes(
    store: &TripleStore,
    filter: &PExpr,
    binding: &[Option<TermId>],
    t: &mut BudgetTracker<'_>,
) -> Result<bool, SparqlError> {
    match eval_expr(store, filter, binding, t) {
        Ok(v) => Ok(v.effective_boolean().unwrap_or(false)),
        Err(e) if e.is_budget() => Err(e),
        Err(_) => Ok(false),
    }
}

fn var_value(
    store: &TripleStore,
    idx: usize,
    binding: &[Option<TermId>],
) -> Result<Value, SparqlError> {
    let id = binding
        .get(idx)
        .copied()
        .flatten()
        .ok_or_else(|| SparqlError::eval("unbound variable in expression"))?;
    Ok(Value::Term(store.dict().resolve(id).clone()))
}

fn eval_expr(
    store: &TripleStore,
    expr: &PExpr,
    binding: &[Option<TermId>],
    t: &mut BudgetTracker<'_>,
) -> Result<Value, SparqlError> {
    match expr {
        PExpr::Var(i) => var_value(store, *i, binding),
        PExpr::Const(term) => Ok(Value::Term(term.clone())),
        PExpr::Compare(op, a, b) => {
            let va = eval_expr(store, a, binding, t)?;
            let vb = eval_expr(store, b, binding, t)?;
            Ok(Value::Bool(va.compare(*op, &vb)?))
        }
        PExpr::And(a, b) => {
            let va = eval_expr(store, a, binding, t)?.effective_boolean()?;
            if !va {
                return Ok(Value::Bool(false));
            }
            let vb = eval_expr(store, b, binding, t)?.effective_boolean()?;
            Ok(Value::Bool(vb))
        }
        PExpr::Or(a, b) => {
            let va = eval_expr(store, a, binding, t)?.effective_boolean()?;
            if va {
                return Ok(Value::Bool(true));
            }
            let vb = eval_expr(store, b, binding, t)?.effective_boolean()?;
            Ok(Value::Bool(vb))
        }
        PExpr::Not(inner) => {
            let v = eval_expr(store, inner, binding, t)?.effective_boolean()?;
            Ok(Value::Bool(!v))
        }
        PExpr::Call(builtin, args) => eval_builtin(store, *builtin, args, binding, t),
        PExpr::Exists { plan, negated } => {
            let found = any_solution(store, plan, Some(binding), t)?;
            Ok(Value::Bool(found != *negated))
        }
    }
}

fn eval_builtin(
    store: &TripleStore,
    builtin: Builtin,
    args: &[PExpr],
    binding: &[Option<TermId>],
    t: &mut BudgetTracker<'_>,
) -> Result<Value, SparqlError> {
    match builtin {
        Builtin::Bound => {
            let bound = match &args[0] {
                PExpr::Var(i) => binding.get(*i).copied().flatten().is_some(),
                _ => true,
            };
            Ok(Value::Bool(bound))
        }
        Builtin::Str => {
            let v = eval_expr(store, &args[0], binding, t)?;
            Ok(Value::Str(v.string_form()?))
        }
        Builtin::Lang => {
            let v = eval_expr(store, &args[0], binding, t)?;
            match v {
                Value::Term(Term::Literal { lang, .. }) => Ok(Value::Str(lang.unwrap_or_default())),
                _ => Err(SparqlError::eval("LANG expects a literal")),
            }
        }
        Builtin::Datatype => {
            let v = eval_expr(store, &args[0], binding, t)?;
            match v {
                Value::Term(Term::Literal { datatype, lang, .. }) => {
                    let dt = match (datatype, lang) {
                        (Some(dt), _) => dt,
                        (None, Some(_)) => {
                            "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString".to_owned()
                        }
                        (None, None) => "http://www.w3.org/2001/XMLSchema#string".to_owned(),
                    };
                    Ok(Value::Term(Term::iri(dt)))
                }
                _ => Err(SparqlError::eval("DATATYPE expects a literal")),
            }
        }
        Builtin::IsIri | Builtin::IsLiteral | Builtin::IsBlank => {
            let v = eval_expr(store, &args[0], binding, t)?;
            let Value::Term(term) = v else {
                return Ok(Value::Bool(false));
            };
            Ok(Value::Bool(match builtin {
                Builtin::IsIri => term.is_iri(),
                Builtin::IsLiteral => term.is_literal(),
                _ => term.is_bnode(),
            }))
        }
        Builtin::StrStarts | Builtin::StrEnds | Builtin::Contains => {
            let a = eval_expr(store, &args[0], binding, t)?.string_form()?;
            let b = eval_expr(store, &args[1], binding, t)?.string_form()?;
            Ok(Value::Bool(match builtin {
                Builtin::StrStarts => a.starts_with(&b),
                Builtin::StrEnds => a.ends_with(&b),
                _ => a.contains(&b),
            }))
        }
        Builtin::Regex => {
            let text = eval_expr(store, &args[0], binding, t)?.string_form()?;
            let pattern = eval_expr(store, &args[1], binding, t)?.string_form()?;
            Ok(Value::Bool(regex_lite(&text, &pattern)))
        }
    }
}

/// Anchored-substring "regex" dialect: `^p` = prefix, `p$` = suffix,
/// `^p$` = exact, otherwise substring. Documented in the crate docs; full
/// regular expressions are out of scope (and not needed by SOFYA).
fn regex_lite(text: &str, pattern: &str) -> bool {
    match (pattern.strip_prefix('^'), pattern.strip_suffix('$')) {
        (Some(_), Some(_)) => {
            let inner = &pattern[1..pattern.len() - 1];
            text == inner
        }
        (Some(prefix), None) => text.starts_with(prefix),
        (None, Some(suffix)) => text.ends_with(suffix),
        (None, None) => text.contains(pattern),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_store() -> TripleStore {
        let mut s = TripleStore::new();
        for (a, p, b) in [
            ("e:s1", "r:bornIn", "e:usa"),
            ("e:s2", "r:bornIn", "e:usa"),
            ("e:s3", "r:bornIn", "e:france"),
            ("e:s1", "r:livesIn", "e:usa"),
            ("e:s3", "r:livesIn", "e:usa"),
        ] {
            s.insert_terms(&Term::iri(a), &Term::iri(p), &Term::iri(b));
        }
        s.insert_terms(
            &Term::iri("e:s1"),
            &Term::iri("r:name"),
            &Term::literal("Frank Sinatra"),
        );
        s.insert_terms(
            &Term::iri("e:s2"),
            &Term::iri("r:name"),
            &Term::literal("Ella"),
        );
        s.insert_terms(&Term::iri("e:s1"), &Term::iri("r:age"), &Term::integer(82));
        s.insert_terms(&Term::iri("e:s2"), &Term::iri("r:age"), &Term::integer(79));
        s
    }

    #[test]
    fn simple_select() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x WHERE { ?x <r:bornIn> <e:usa> }").unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn join_two_patterns() {
        let s = demo_store();
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:bornIn> <e:usa> . ?x <r:livesIn> <e:usa> }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:s1")));
    }

    #[test]
    fn variable_predicate() {
        let s = demo_store();
        let rs = execute(&s, "SELECT DISTINCT ?p { <e:s1> ?p ?y }").unwrap();
        let mut preds: Vec<String> = rs
            .column("p")
            .iter()
            .map(|t| t.as_iri().unwrap().to_owned())
            .collect();
        preds.sort();
        assert_eq!(preds, vec!["r:age", "r:bornIn", "r:livesIn", "r:name"]);
    }

    #[test]
    fn filter_neq_between_vars() {
        let s = demo_store();
        let rs = execute(
            &s,
            "SELECT ?x ?a ?b { ?x <r:bornIn> ?a . ?x <r:livesIn> ?b . FILTER(?a != ?b) }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:s3")));
    }

    #[test]
    fn filter_numeric_comparison() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x { ?x <r:age> ?a FILTER(?a > 80) }").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:s1")));
    }

    #[test]
    fn filter_string_builtins() {
        let s = demo_store();
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:name> ?n FILTER(STRSTARTS(STR(?n), \"Frank\")) }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:name> ?n FILTER(CONTAINS(STR(?n), \"ll\")) }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn regex_lite_dialect() {
        assert!(regex_lite("Frank Sinatra", "Sinatra$"));
        assert!(regex_lite("Frank Sinatra", "^Frank"));
        assert!(regex_lite("Frank Sinatra", "nk Si"));
        assert!(regex_lite("abc", "^abc$"));
        assert!(!regex_lite("abcd", "^abc$"));
    }

    #[test]
    fn not_exists_filter() {
        let s = demo_store();
        // People born in the USA who do NOT live in the USA: none (s1 lives
        // there, s2 has no livesIn at all — wait, s2 has no livesIn fact, so
        // NOT EXISTS holds for s2).
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:bornIn> <e:usa> FILTER NOT EXISTS { ?x <r:livesIn> <e:usa> } }",
        )
        .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:s2")));
    }

    #[test]
    fn exists_filter() {
        let s = demo_store();
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:bornIn> ?c FILTER EXISTS { ?x <r:livesIn> <e:usa> } }",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn distinct_and_order_and_limit() {
        let s = demo_store();
        let rs = execute(
            &s,
            "SELECT DISTINCT ?c { ?x <r:bornIn> ?c } ORDER BY ?c LIMIT 10",
        )
        .unwrap();
        assert_eq!(rs.len(), 2);
        // Ordered ascending: e:france before e:usa.
        assert_eq!(rs.cell(0, "c"), Some(&Term::iri("e:france")));
    }

    #[test]
    fn order_by_desc() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x ?a { ?x <r:age> ?a } ORDER BY DESC(?a)").unwrap();
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:s1")));
    }

    #[test]
    fn limit_offset_pagination() {
        let s = demo_store();
        let all = execute(&s, "SELECT ?x ?y { ?x <r:bornIn> ?y } ORDER BY ?x").unwrap();
        let page2 = execute(
            &s,
            "SELECT ?x ?y { ?x <r:bornIn> ?y } ORDER BY ?x LIMIT 2 OFFSET 1",
        )
        .unwrap();
        assert_eq!(page2.len(), 2);
        assert_eq!(page2.rows()[0], all.rows()[1]);
        assert_eq!(page2.rows()[1], all.rows()[2]);
    }

    #[test]
    fn count_star() {
        let s = demo_store();
        let rs = execute(&s, "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y }").unwrap();
        assert_eq!(rs.single_integer(), Some(3));
    }

    #[test]
    fn count_distinct_var() {
        let s = demo_store();
        let rs = execute(&s, "SELECT (COUNT(DISTINCT ?y) AS ?n) { ?x <r:bornIn> ?y }").unwrap();
        assert_eq!(rs.single_integer(), Some(2));
    }

    #[test]
    fn count_respects_limit_and_offset_modifiers() {
        let s = demo_store();
        // Index-shortcut path (single pattern, no filters).
        let rs = execute(&s, "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y } LIMIT 0").unwrap();
        assert!(rs.is_empty());
        let rs = execute(&s, "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y } OFFSET 1").unwrap();
        assert!(rs.is_empty());
        let rs = execute(&s, "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y } LIMIT 1").unwrap();
        assert_eq!(rs.single_integer(), Some(3));
        // Fallback path (join required: two patterns).
        let rs = execute(
            &s,
            "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y . ?x <r:livesIn> ?z } LIMIT 0",
        )
        .unwrap();
        assert!(rs.is_empty());
        let rs = execute(
            &s,
            "SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y . ?x <r:livesIn> ?z } OFFSET 2",
        )
        .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn count_of_var_uses_index_when_var_is_in_pattern() {
        let s = demo_store();
        let rs = execute(&s, "SELECT (COUNT(?x) AS ?n) { ?x <r:bornIn> ?y }").unwrap();
        assert_eq!(rs.single_integer(), Some(3));
        // A variable the pattern never binds counts zero rows (fallback).
        let rs = execute(&s, "SELECT (COUNT(?ghost) AS ?n) { ?x <r:bornIn> ?y }");
        assert!(rs.is_err() || rs.unwrap().single_integer() == Some(0));
    }

    #[test]
    fn ask_true_and_false() {
        let s = demo_store();
        assert!(execute_ask(&s, "ASK { <e:s1> <r:bornIn> <e:usa> }").unwrap());
        assert!(!execute_ask(&s, "ASK { <e:s1> <r:bornIn> <e:france> }").unwrap());
    }

    #[test]
    fn unknown_constant_yields_empty_not_error() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x { ?x <r:ghost> ?y }").unwrap();
        assert!(rs.is_empty());
        assert!(!execute_ask(&s, "ASK { <e:nobody> ?p ?y }").unwrap());
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut s = demo_store();
        s.insert_terms(
            &Term::iri("e:loop"),
            &Term::iri("r:knows"),
            &Term::iri("e:loop"),
        );
        let rs = execute(&s, "SELECT ?x { ?x <r:knows> ?x }").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:loop")));
    }

    #[test]
    fn star_projection_covers_all_vars() {
        let s = demo_store();
        let rs = execute(&s, "SELECT * { ?x <r:bornIn> ?y }").unwrap();
        assert_eq!(rs.vars(), &["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn projection_of_unbound_var_is_allowed() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x ?ghost { ?x <r:bornIn> <e:usa> }").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.cell(0, "ghost"), None);
    }

    #[test]
    fn filter_error_is_false_not_fatal() {
        let s = demo_store();
        // LANG of an IRI errors; the row is dropped, not the query.
        let rs = execute(
            &s,
            "SELECT ?x { ?x <r:bornIn> ?y FILTER(LANG(?y) = \"en\") }",
        )
        .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn ask_via_execute_is_error() {
        let s = demo_store();
        assert!(execute(&s, "ASK { ?x <r:bornIn> ?y }").is_err());
        assert!(execute_ask(&s, "SELECT ?x { ?x <r:bornIn> ?y }").is_err());
    }

    #[test]
    fn early_stop_respects_limit_without_order() {
        let s = demo_store();
        let rs = execute(&s, "SELECT ?x { ?x <r:bornIn> ?y } LIMIT 1").unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn budget_row_cap_kills_a_cross_join() {
        use crate::budget::{BudgetBreach, QueryBudget};
        let s = demo_store();
        let q = parse_query("SELECT ?a ?b ?c { ?a ?p ?b . ?c ?q ?d }").unwrap();
        let budget = QueryBudget::unlimited().with_max_rows_scanned(10);
        let err = execute_ast_budgeted(&s, &q, PlanOptions::default(), &budget).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::Budget {
                breach: BudgetBreach::RowsScanned { limit: 10 }
            }
        ));
        // The same query under an ample budget matches the unbudgeted run.
        let roomy = QueryBudget::unlimited().with_max_rows_scanned(1_000_000);
        let budgeted = execute_ast_budgeted(&s, &q, PlanOptions::default(), &roomy).unwrap();
        let plain = execute_ast(&s, &q).unwrap();
        assert_eq!(budgeted, plain);
    }

    #[test]
    fn budget_binding_cap_kills_wide_results() {
        use crate::budget::{BudgetBreach, QueryBudget};
        let s = demo_store();
        let q = parse_query("SELECT ?s ?p ?o { ?s ?p ?o }").unwrap();
        let budget = QueryBudget::unlimited().with_max_bindings(3);
        let err = execute_ast_budgeted(&s, &q, PlanOptions::default(), &budget).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::Budget {
                breach: BudgetBreach::Bindings { limit: 3 }
            }
        ));
    }

    #[test]
    fn cancelled_token_fails_even_the_index_fast_paths() {
        use crate::budget::{BudgetBreach, CancelToken, QueryBudget};
        use std::sync::Arc;
        let s = demo_store();
        let token = Arc::new(CancelToken::new());
        token.cancel();
        let budget = QueryBudget::unlimited().with_cancel(token);
        // ASK and COUNT resolve off index bounds without scanning; the
        // preflight check still refuses cancelled work.
        let ask = parse_query("ASK { <e:s1> <r:bornIn> <e:usa> }").unwrap();
        let err = execute_ast_budgeted(&s, &ask, PlanOptions::default(), &budget).unwrap_err();
        assert!(matches!(
            err,
            SparqlError::Budget {
                breach: BudgetBreach::Cancelled
            }
        ));
        let count = parse_query("SELECT (COUNT(*) AS ?n) { ?x <r:bornIn> ?y }").unwrap();
        assert!(execute_ast_budgeted(&s, &count, PlanOptions::default(), &budget).is_err());
    }

    #[test]
    fn budget_breach_inside_filter_exists_is_not_absorbed() {
        use crate::budget::QueryBudget;
        let s = demo_store();
        // The EXISTS sub-query forces scans inside filter evaluation; a
        // tiny scan cap must surface as an error, not drop rows silently.
        let q =
            parse_query("SELECT ?x { ?x <r:bornIn> ?c FILTER EXISTS { ?x <r:livesIn> <e:usa> } }")
                .unwrap();
        let budget = QueryBudget::unlimited().with_max_rows_scanned(1);
        let err = execute_ast_budgeted(&s, &q, PlanOptions::default(), &budget).unwrap_err();
        assert!(err.is_budget(), "got {err:?}");
    }

    #[test]
    fn empty_pattern_yields_single_empty_solution() {
        let s = demo_store();
        // Zero triple patterns: one solution with nothing bound (per the
        // SPARQL algebra, the empty BGP's multiset is { μ0 }).
        let rs = execute(&s, "SELECT (COUNT(*) AS ?n) { }").unwrap();
        assert_eq!(rs.single_integer(), Some(1));
        assert!(execute_ask(&s, "ASK { }").unwrap());
    }
}
