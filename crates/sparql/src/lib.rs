//! # sofya-sparql
//!
//! A SPARQL 1.1 *subset* engine over [`sofya_rdf::TripleStore`].
//!
//! SOFYA's premise is that each knowledge base is only reachable through a
//! SPARQL endpoint, so every data access in this reproduction is phrased as
//! a SPARQL query string and executed by this crate. The supported subset
//! covers all query shapes the paper's algorithms issue:
//!
//! * `SELECT [DISTINCT] (?v… | * | (COUNT(*) AS ?c))` over a basic graph
//!   pattern, with variables allowed in any triple position (including the
//!   predicate — needed for "which relations does entity x have?").
//! * `FILTER` expressions: comparisons (`=`, `!=`, `<`, `<=`, `>`, `>=`),
//!   boolean connectives, `BOUND`, `STR`, `LANG`, `DATATYPE`, `ISIRI`,
//!   `ISLITERAL`, `ISBLANK`, `STRSTARTS`, `STRENDS`, `CONTAINS`,
//!   `REGEX` (anchored-substring dialect), and `[NOT] EXISTS { … }`.
//! * `UNION` blocks and `OPTIONAL` left-joins (documented subset
//!   semantics: basic pattern first, then unions, then optionals, then
//!   group-level filters — see [`ast::GroupGraphPattern`]).
//! * Solution modifiers: `ORDER BY [ASC|DESC]`, `LIMIT`, `OFFSET`.
//! * `ASK { … }`.
//! * An [`unparse`](unparse::unparse) serialiser (AST → text), used by
//!   SOFYA's cross-KB query rewriting.
//!
//! The evaluator performs an index nested-loop join, greedily ordering BGP
//! patterns by estimated selectivity against the store's permutation
//! indexes (see [`plan`]).
//!
//! ```
//! use sofya_rdf::{Term, TripleStore};
//! use sofya_sparql::execute;
//!
//! let mut store = TripleStore::new();
//! store.insert_terms(&Term::iri("e:sinatra"), &Term::iri("r:bornIn"), &Term::iri("e:usa"));
//! let rs = execute(&store, "SELECT ?who WHERE { ?who <r:bornIn> <e:usa> }").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod budget;
pub mod error;
pub mod eval;
pub mod parser;
pub mod plan;
pub mod prepared;
pub mod solution;
pub mod token;
pub mod unparse;
pub mod value;

pub use ast::{Expr, NodePattern, Projection, Query, SelectQuery, TriplePatternAst};
pub use budget::{BudgetBreach, CancelToken, QueryBudget};
pub use error::SparqlError;
pub use eval::{
    compile_ast_with_options, compile_with_options, execute, execute_ask, execute_ast,
    execute_ast_budgeted, execute_ast_with_options, execute_compiled, execute_compiled_budgeted,
    execute_compiled_paged, execute_compiled_paged_budgeted, execute_query,
    execute_select_budgeted, execute_select_with, execute_with_options, CompiledQuery,
    QueryOutcome,
};
pub use parser::parse_query;
pub use plan::PlanOptions;
pub use prepared::Prepared;
pub use solution::ResultSet;
pub use unparse::unparse;

// Concurrency audit: the service layer shares prepared templates and
// compiled plans across worker threads (`Arc<CompiledQuery>` in sharded
// plan caches, `&'static Prepared` in the endpoint helpers). Keep the
// auto-derived `Send + Sync` bounds pinned so a future interior-mutability
// field fails to compile here instead of deep inside the scheduler.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Prepared>();
    check::<CompiledQuery>();
    check::<Query>();
    check::<ResultSet>();
    check::<QueryOutcome>();
}
