//! Recursive-descent parser for the supported SPARQL subset.

use crate::ast::{
    Builtin, CompareOp, Expr, GroupGraphPattern, NodePattern, OrderKey, Projection, Query,
    SelectQuery, TriplePatternAst,
};
use crate::error::SparqlError;
use crate::token::{tokenize, Token};
use sofya_rdf::Term;

/// XSD boolean datatype IRI (used for `TRUE`/`FALSE` literals).
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
/// XSD integer datatype IRI (used for numeric literals).
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";

/// Parses a query string into an AST.
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    if !parser.at_end() {
        return Err(SparqlError::parse(format!(
            "unexpected trailing token {:?}",
            parser.peek().unwrap()
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Result<Token, SparqlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| SparqlError::parse("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Token) -> Result<(), SparqlError> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(SparqlError::parse(format!(
                "expected {want:?}, found {got:?}"
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SparqlError::parse(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_query(&mut self) -> Result<Query, SparqlError> {
        if self.eat_keyword("ASK") {
            let pattern = self.parse_group()?;
            return Ok(Query::Ask(pattern));
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let projection = self.parse_projection()?;
        // WHERE is optional in SPARQL.
        let _ = self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek() {
                    Some(Token::Var(_)) => {
                        let Token::Var(v) = self.next()? else {
                            unreachable!()
                        };
                        order_by.push(OrderKey {
                            var: v,
                            descending: false,
                        });
                    }
                    Some(Token::Keyword(k)) if k == "ASC" || k == "DESC" => {
                        let descending = k == "DESC";
                        self.pos += 1;
                        self.expect(&Token::LParen)?;
                        let Token::Var(v) = self.next()? else {
                            return Err(SparqlError::parse("expected variable in ORDER BY"));
                        };
                        self.expect(&Token::RParen)?;
                        order_by.push(OrderKey { var: v, descending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(SparqlError::parse("ORDER BY requires at least one key"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        // Accept LIMIT/OFFSET in either order, each at most once.
        for _ in 0..2 {
            if limit.is_none() && self.eat_keyword("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if offset.is_none() && self.eat_keyword("OFFSET") {
                offset = Some(self.parse_usize()?);
            }
        }

        Ok(Query::Select(SelectQuery {
            projection,
            distinct,
            pattern,
            order_by,
            limit,
            offset,
        }))
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.next()? {
            Token::Integer(n) if n >= 0 => Ok(n as usize),
            other => Err(SparqlError::parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_projection(&mut self) -> Result<Projection, SparqlError> {
        match self.peek() {
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Projection::Star)
            }
            Some(Token::LParen) => {
                // ( COUNT ( * | [DISTINCT] ?v ) AS ?alias )
                self.pos += 1;
                self.expect_keyword("COUNT")?;
                self.expect(&Token::LParen)?;
                let (var, distinct) = match self.peek() {
                    Some(Token::Star) => {
                        self.pos += 1;
                        (None, false)
                    }
                    _ => {
                        let distinct = self.eat_keyword("DISTINCT");
                        let Token::Var(v) = self.next()? else {
                            return Err(SparqlError::parse("expected variable in COUNT"));
                        };
                        (Some(v), distinct)
                    }
                };
                self.expect(&Token::RParen)?;
                self.expect_keyword("AS")?;
                let Token::Var(alias) = self.next()? else {
                    return Err(SparqlError::parse("expected variable after AS"));
                };
                self.expect(&Token::RParen)?;
                Ok(Projection::Count {
                    var,
                    distinct,
                    alias,
                })
            }
            Some(Token::Var(_)) => {
                let mut vars = Vec::new();
                while let Some(Token::Var(_)) = self.peek() {
                    let Token::Var(v) = self.next()? else {
                        unreachable!()
                    };
                    vars.push(v);
                }
                Ok(Projection::Vars(vars))
            }
            other => Err(SparqlError::parse(format!(
                "expected projection (*, variables or COUNT), found {other:?}"
            ))),
        }
    }

    fn parse_group(&mut self) -> Result<GroupGraphPattern, SparqlError> {
        self.expect(&Token::LBrace)?;
        let mut group = GroupGraphPattern::default();
        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Token::Keyword(k)) if k == "FILTER" => {
                    self.pos += 1;
                    group.filters.push(self.parse_constraint()?);
                    // An optional '.' may separate filters from triples.
                    while matches!(self.peek(), Some(Token::Dot)) {
                        self.pos += 1;
                    }
                }
                Some(Token::Keyword(k)) if k == "OPTIONAL" => {
                    self.pos += 1;
                    group.optionals.push(self.parse_group()?);
                    while matches!(self.peek(), Some(Token::Dot)) {
                        self.pos += 1;
                    }
                }
                Some(Token::LBrace) => {
                    // A nested group, possibly the head of a UNION chain.
                    let mut branches = vec![self.parse_group()?];
                    while self.eat_keyword("UNION") {
                        branches.push(self.parse_group()?);
                    }
                    group.unions.push(branches);
                    while matches!(self.peek(), Some(Token::Dot)) {
                        self.pos += 1;
                    }
                }
                Some(_) => {
                    let triple = self.parse_triple()?;
                    group.triples.push(triple);
                    // '.' separators are optional before '}' per SPARQL.
                    while matches!(self.peek(), Some(Token::Dot)) {
                        self.pos += 1;
                    }
                }
                None => {
                    return Err(SparqlError::parse(
                        "unterminated group pattern, expected '}'",
                    ))
                }
            }
        }
        Ok(group)
    }

    fn parse_triple(&mut self) -> Result<TriplePatternAst, SparqlError> {
        let s = self.parse_node()?;
        let p = self.parse_node()?;
        let o = self.parse_node()?;
        if matches!(&p, NodePattern::Term(t) if !t.is_iri()) {
            return Err(SparqlError::parse("predicate must be a variable or an IRI"));
        }
        Ok(TriplePatternAst { s, p, o })
    }

    fn parse_node(&mut self) -> Result<NodePattern, SparqlError> {
        match self.next()? {
            Token::Var(v) => Ok(NodePattern::Var(v)),
            Token::Iri(iri) => Ok(NodePattern::Term(Term::iri(iri))),
            Token::BNode(label) => Ok(NodePattern::Term(Term::bnode(label))),
            Token::Str(s) => Ok(NodePattern::Term(self.finish_literal(s)?)),
            Token::Integer(n) => Ok(NodePattern::Term(Term::integer(n))),
            other => Err(SparqlError::parse(format!(
                "expected triple-pattern node, found {other:?}"
            ))),
        }
    }

    /// After a string token, consumes an optional `@lang` or `^^<dt>`.
    fn finish_literal(&mut self, lexical: String) -> Result<Term, SparqlError> {
        match self.peek() {
            Some(Token::LangTag(_)) => {
                let Token::LangTag(lang) = self.next()? else {
                    unreachable!()
                };
                Ok(Term::lang_literal(lexical, lang))
            }
            Some(Token::DoubleCaret) => {
                self.pos += 1;
                match self.next()? {
                    Token::Iri(dt) => Ok(Term::typed_literal(lexical, dt)),
                    other => Err(SparqlError::parse(format!(
                        "expected datatype IRI, found {other:?}"
                    ))),
                }
            }
            _ => Ok(Term::literal(lexical)),
        }
    }

    fn parse_constraint(&mut self) -> Result<Expr, SparqlError> {
        // FILTER is followed by a parenthesised expression or a bare
        // builtin / EXISTS call.
        match self.peek() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Token::OrOr)) {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut lhs = self.parse_unary()?;
        while matches!(self.peek(), Some(Token::AndAnd)) {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        if matches!(self.peek(), Some(Token::Bang)) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, SparqlError> {
        let lhs = self.parse_primary()?;
        let op = match self.peek() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::Neq) => CompareOp::Neq,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::Le) => CompareOp::Le,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::Ge) => CompareOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_primary()?;
        Ok(Expr::Compare(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.next()? {
            Token::Var(v) => Ok(Expr::Var(v)),
            Token::Iri(iri) => Ok(Expr::Const(Term::iri(iri))),
            Token::Str(s) => Ok(Expr::Const(self.finish_literal(s)?)),
            Token::Integer(n) => Ok(Expr::Const(Term::integer(n))),
            Token::LParen => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Bang => {
                let inner = self.parse_unary()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            Token::Keyword(kw) => self.parse_keyword_primary(&kw),
            other => Err(SparqlError::parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }

    fn parse_keyword_primary(&mut self, kw: &str) -> Result<Expr, SparqlError> {
        let builtin = match kw {
            "TRUE" => {
                return Ok(Expr::Const(Term::typed_literal("true", XSD_BOOLEAN)));
            }
            "FALSE" => {
                return Ok(Expr::Const(Term::typed_literal("false", XSD_BOOLEAN)));
            }
            "NOT" => {
                self.expect_keyword("EXISTS")?;
                let pattern = self.parse_group()?;
                return Ok(Expr::Exists {
                    pattern,
                    negated: true,
                });
            }
            "EXISTS" => {
                let pattern = self.parse_group()?;
                return Ok(Expr::Exists {
                    pattern,
                    negated: false,
                });
            }
            "BOUND" => Builtin::Bound,
            "STR" => Builtin::Str,
            "LANG" => Builtin::Lang,
            "DATATYPE" => Builtin::Datatype,
            "ISIRI" => Builtin::IsIri,
            "ISLITERAL" => Builtin::IsLiteral,
            "ISBLANK" => Builtin::IsBlank,
            "STRSTARTS" => Builtin::StrStarts,
            "STRENDS" => Builtin::StrEnds,
            "CONTAINS" => Builtin::Contains,
            "REGEX" => Builtin::Regex,
            other => {
                return Err(SparqlError::parse(format!(
                    "unexpected keyword {other} in expression"
                )))
            }
        };
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if !matches!(self.peek(), Some(Token::RParen)) {
            loop {
                args.push(self.parse_expr()?);
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let arity: usize = match builtin {
            Builtin::Bound
            | Builtin::Str
            | Builtin::Lang
            | Builtin::Datatype
            | Builtin::IsIri
            | Builtin::IsLiteral
            | Builtin::IsBlank => 1,
            Builtin::StrStarts | Builtin::StrEnds | Builtin::Contains | Builtin::Regex => 2,
        };
        if args.len() != arity {
            return Err(SparqlError::parse(format!(
                "{builtin:?} expects {arity} argument(s), got {}",
                args.len()
            )));
        }
        Ok(Expr::Call(builtin, args))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(input: &str) -> SelectQuery {
        match parse_query(input).unwrap() {
            Query::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_minimal_select() {
        let q = select("SELECT ?x WHERE { ?x <p> ?y }");
        assert_eq!(q.projection, Projection::Vars(vec!["x".into()]));
        assert_eq!(q.pattern.triples.len(), 1);
        assert!(!q.distinct);
    }

    #[test]
    fn parses_star_and_distinct() {
        let q = select("SELECT DISTINCT * { ?x <p> ?y . ?y <q> ?z }");
        assert_eq!(q.projection, Projection::Star);
        assert!(q.distinct);
        assert_eq!(q.pattern.triples.len(), 2);
    }

    #[test]
    fn parses_count_star() {
        let q = select("SELECT (COUNT(*) AS ?n) WHERE { ?x <p> ?y }");
        assert_eq!(
            q.projection,
            Projection::Count {
                var: None,
                distinct: false,
                alias: "n".into()
            }
        );
    }

    #[test]
    fn parses_count_distinct_var() {
        let q = select("SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x <p> ?y }");
        assert_eq!(
            q.projection,
            Projection::Count {
                var: Some("x".into()),
                distinct: true,
                alias: "n".into()
            }
        );
    }

    #[test]
    fn parses_limit_offset_in_both_orders() {
        let q = select("SELECT ?x { ?x <p> ?y } LIMIT 5 OFFSET 2");
        assert_eq!((q.limit, q.offset), (Some(5), Some(2)));
        let q = select("SELECT ?x { ?x <p> ?y } OFFSET 2 LIMIT 5");
        assert_eq!((q.limit, q.offset), (Some(5), Some(2)));
    }

    #[test]
    fn parses_order_by() {
        let q = select("SELECT ?x { ?x <p> ?y } ORDER BY ?x DESC(?y) LIMIT 1");
        assert_eq!(
            q.order_by,
            vec![
                OrderKey {
                    var: "x".into(),
                    descending: false
                },
                OrderKey {
                    var: "y".into(),
                    descending: true
                },
            ]
        );
    }

    #[test]
    fn parses_filter_comparison() {
        let q = select("SELECT ?x { ?x <p> ?y . FILTER(?y != ?x) }");
        assert_eq!(q.pattern.filters.len(), 1);
        match &q.pattern.filters[0] {
            Expr::Compare(CompareOp::Neq, a, b) => {
                assert_eq!(**a, Expr::Var("y".into()));
                assert_eq!(**b, Expr::Var("x".into()));
            }
            other => panic!("unexpected filter {other:?}"),
        }
    }

    #[test]
    fn parses_boolean_connectives_with_precedence() {
        let q = select("SELECT ?x { ?x <p> ?y FILTER(?x = ?y || ?x != ?y && BOUND(?x)) }");
        // && binds tighter than ||.
        match &q.pattern.filters[0] {
            Expr::Or(_, rhs) => assert!(matches!(**rhs, Expr::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_not_exists() {
        let q = select("SELECT ?x { ?x <p> ?y FILTER NOT EXISTS { ?x <q> ?y } }");
        match &q.pattern.filters[0] {
            Expr::Exists { pattern, negated } => {
                assert!(*negated);
                assert_eq!(pattern.triples.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_exists_inside_parens() {
        let q = select("SELECT ?x { ?x <p> ?y FILTER(EXISTS { ?x <q> ?y }) }");
        assert!(matches!(
            &q.pattern.filters[0],
            Expr::Exists { negated: false, .. }
        ));
    }

    #[test]
    fn parses_builtins() {
        let q =
            select("SELECT ?x { ?x <name> ?n FILTER(ISLITERAL(?n) && STRSTARTS(STR(?n), \"A\")) }");
        assert_eq!(q.pattern.filters.len(), 1);
    }

    #[test]
    fn parses_ask() {
        match parse_query("ASK { <a> <p> <b> }").unwrap() {
            Query::Ask(p) => assert_eq!(p.triples.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_literals_in_patterns() {
        let q = select("SELECT ?x { ?x <name> \"Alice\"@en . ?x <age> 42 }");
        match &q.pattern.triples[0].o {
            NodePattern::Term(t) => assert_eq!(t, &Term::lang_literal("Alice", "en")),
            other => panic!("unexpected {other:?}"),
        }
        match &q.pattern.triples[1].o {
            NodePattern::Term(t) => assert_eq!(t, &Term::integer(42)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variable_predicate_is_allowed() {
        let q = select("SELECT ?p { <a> ?p ?y }");
        assert_eq!(q.pattern.triples[0].p.as_var(), Some("p"));
    }

    #[test]
    fn literal_predicate_is_rejected() {
        assert!(parse_query("SELECT ?x { ?x \"p\" ?y }").is_err());
    }

    #[test]
    fn rejects_wrong_builtin_arity() {
        assert!(parse_query("SELECT ?x { ?x <p> ?y FILTER(BOUND(?x, ?y)) }").is_err());
        assert!(parse_query("SELECT ?x { ?x <p> ?y FILTER(CONTAINS(?x)) }").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_query("SELECT ?x { ?x <p> ?y } }").is_err());
    }

    #[test]
    fn rejects_unterminated_group() {
        assert!(parse_query("SELECT ?x { ?x <p> ?y").is_err());
    }

    #[test]
    fn rejects_negative_limit() {
        assert!(parse_query("SELECT ?x { ?x <p> ?y } LIMIT -1").is_err());
    }

    #[test]
    fn dot_separators_are_flexible() {
        let q = select("SELECT ?x { ?x <p> ?y . . ?y <q> ?z . }");
        assert_eq!(q.pattern.triples.len(), 2);
    }
}
