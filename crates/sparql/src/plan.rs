//! Query planning: variable numbering, constant encoding, greedy join
//! ordering, and filter scheduling.
//!
//! Planning happens per query against a concrete store: constant terms are
//! looked up in the store's dictionary once (a constant absent from the
//! dictionary proves the pattern matches nothing), and BGP patterns are
//! reordered so the most selective ones run first in the index
//! nested-loop join.

use crate::ast::{Builtin, CompareOp, Expr, GroupGraphPattern, NodePattern};
use sofya_rdf::{StoreStats, Term, TermId, TriplePattern, TripleStore};

/// Planner knobs.
///
/// The default plans with greedy selectivity-driven join reordering and
/// no precomputed statistics (the planner then falls back to exact
/// [`TripleStore::count_pattern`] prefix counts alone, which are computed
/// per candidate in O(log n)).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanOptions<'a> {
    /// Keep the written pattern order (disables reordering; used by the
    /// planner-differential tests and as an escape hatch).
    pub preserve_order: bool,
    /// Precomputed store statistics. When present, bound-variable
    /// positions are discounted by per-predicate distinct-value counts
    /// instead of a square-root fallback.
    pub stats: Option<&'a StoreStats>,
}

/// One position of a planned pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// A variable, by index into the plan's variable table.
    Var(usize),
    /// A constant: `Some(id)` if interned in the store, `None` if the
    /// constant does not occur in the store at all (pattern can't match).
    Const(Option<TermId>),
}

/// A triple pattern with encoded slots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedPattern {
    /// Subject slot.
    pub s: Slot,
    /// Predicate slot.
    pub p: Slot,
    /// Object slot.
    pub o: Slot,
}

impl PlannedPattern {
    fn slots(&self) -> [Slot; 3] {
        [self.s, self.p, self.o]
    }

    /// Whether some constant is absent from the dictionary.
    pub fn is_unsatisfiable(&self) -> bool {
        self.slots().iter().any(|s| matches!(s, Slot::Const(None)))
    }
}

/// A compiled filter expression with variables resolved to indices.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Variable by index.
    Var(usize),
    /// Constant term.
    Const(Term),
    /// Comparison.
    Compare(CompareOp, Box<PExpr>, Box<PExpr>),
    /// Conjunction.
    And(Box<PExpr>, Box<PExpr>),
    /// Disjunction.
    Or(Box<PExpr>, Box<PExpr>),
    /// Negation.
    Not(Box<PExpr>),
    /// Built-in call.
    Call(Builtin, Vec<PExpr>),
    /// `[NOT] EXISTS` with its own sub-plan sharing the outer variable
    /// table as a prefix.
    Exists {
        /// Sub-plan; its `var_names` extends the outer table.
        plan: Box<GroupPlan>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
}

impl PExpr {
    fn max_outer_var(&self, outer_len: usize, acc: &mut Vec<usize>) {
        match self {
            PExpr::Var(i) => {
                if *i < outer_len {
                    acc.push(*i);
                }
            }
            PExpr::Const(_) => {}
            PExpr::Compare(_, a, b) | PExpr::And(a, b) | PExpr::Or(a, b) => {
                a.max_outer_var(outer_len, acc);
                b.max_outer_var(outer_len, acc);
            }
            PExpr::Not(inner) => inner.max_outer_var(outer_len, acc),
            PExpr::Call(_, args) => {
                for a in args {
                    a.max_outer_var(outer_len, acc);
                }
            }
            PExpr::Exists { plan, .. } => {
                // Shared variables are exactly those sub-plan variables that
                // fall inside the outer table prefix.
                for pattern in &plan.patterns {
                    for slot in pattern.slots() {
                        if let Slot::Var(i) = slot {
                            if i < outer_len {
                                acc.push(i);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A planned group pattern: ordered patterns plus scheduled filters,
/// union blocks, and optional extensions.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupPlan {
    /// All variables in scope, indices matching [`Slot::Var`]. The table
    /// includes every variable of nested `UNION`/`OPTIONAL` groups, so all
    /// solution rows of one query share a width. For an `EXISTS` sub-plan
    /// the table extends the outer scope's table as a prefix.
    pub var_names: Vec<String>,
    /// Triple patterns in execution order.
    pub patterns: Vec<PlannedPattern>,
    /// `filters_at[k]` holds filters to evaluate once the first `k`
    /// patterns have bound their variables (`k` ranges 0..=patterns.len()).
    pub filters_at: Vec<Vec<PExpr>>,
    /// Filters referencing variables only bound by unions/optionals; they
    /// run after the whole group is evaluated.
    pub post_filters: Vec<PExpr>,
    /// Planned `UNION` blocks (each a list of branch plans).
    pub unions: Vec<Vec<GroupPlan>>,
    /// Planned `OPTIONAL` extensions (left joins, in order).
    pub optionals: Vec<GroupPlan>,
}

impl GroupPlan {
    /// Plans `pattern` against `store`, with `outer_vars` naming variables
    /// inherited from an enclosing scope (empty for top-level queries).
    pub fn build(store: &TripleStore, pattern: &GroupGraphPattern, outer_vars: &[String]) -> Self {
        Self::build_with(store, pattern, outer_vars, PlanOptions::default())
    }

    /// Plans `pattern` with explicit [`PlanOptions`].
    pub fn build_with(
        store: &TripleStore,
        pattern: &GroupGraphPattern,
        outer_vars: &[String],
        opts: PlanOptions<'_>,
    ) -> Self {
        // Pre-collect every variable of the group tree so the parent and
        // all union/optional sub-plans agree on one binding width.
        let mut var_names: Vec<String> = outer_vars.to_vec();
        {
            let mut tree_vars = Vec::new();
            crate::ast::collect_pattern_vars(pattern, &mut tree_vars);
            for v in tree_vars {
                if !var_names.contains(&v) {
                    var_names.push(v);
                }
            }
        }
        let mut var_index = |name: &str, var_names: &mut Vec<String>| -> usize {
            if let Some(i) = var_names.iter().position(|v| v == name) {
                i
            } else {
                var_names.push(name.to_owned());
                var_names.len() - 1
            }
        };

        // Encode patterns.
        let mut patterns: Vec<PlannedPattern> = pattern
            .triples
            .iter()
            .map(|tp| PlannedPattern {
                s: encode(&tp.s, store, &mut var_index, &mut var_names),
                p: encode(&tp.p, store, &mut var_index, &mut var_names),
                o: encode(&tp.o, store, &mut var_index, &mut var_names),
            })
            .collect();

        // Greedy ordering: repeatedly pick the pattern with the smallest
        // estimated result cardinality given the variables bound so far.
        let outer_len = outer_vars.len();
        let mut bound: Vec<bool> = vec![false; var_names.len()];
        for b in bound.iter_mut().take(outer_len) {
            *b = true;
        }
        let mut ordered: Vec<PlannedPattern> = Vec::with_capacity(patterns.len());
        if opts.preserve_order {
            for p in &patterns {
                for slot in p.slots() {
                    if let Slot::Var(v) = slot {
                        bound[v] = true;
                    }
                }
            }
            ordered.append(&mut patterns);
        }
        while !patterns.is_empty() {
            // Stable tie-break: the first pattern among equals wins, so plans
            // are deterministic and follow query order when estimates tie.
            let mut best_idx = 0;
            let mut best_cost = estimated_cardinality(store, opts.stats, &patterns[0], &bound);
            for (i, p) in patterns.iter().enumerate().skip(1) {
                let cost = estimated_cardinality(store, opts.stats, p, &bound);
                if cost < best_cost {
                    best_idx = i;
                    best_cost = cost;
                }
            }
            let chosen = patterns.remove(best_idx);
            for slot in chosen.slots() {
                if let Slot::Var(v) = slot {
                    bound[v] = true;
                }
            }
            ordered.push(chosen);
        }

        // Variables bound by the basic pattern itself (or inherited).
        let bgp_bound: Vec<bool> = bound.clone();

        // Compile filters. Those fully answerable from the basic pattern
        // are scheduled at the earliest join level where their variables
        // are bound; the rest (reading union/optional variables) run after
        // the whole group.
        let levels = ordered.len();
        let mut filters_at: Vec<Vec<PExpr>> = vec![Vec::new(); levels + 1];
        let mut post_filters = Vec::new();
        for filter in &pattern.filters {
            let compiled = compile_expr(filter, store, &var_names, opts);
            let mut used = Vec::new();
            compiled.max_outer_var(var_names.len(), &mut used);
            if used.iter().any(|&v| !bgp_bound[v]) {
                post_filters.push(compiled);
            } else {
                let level = earliest_level(&used, outer_len, &ordered);
                filters_at[level].push(compiled);
            }
        }

        // Sub-plans share the full variable table as their outer scope, so
        // their bindings have identical width.
        let unions: Vec<Vec<GroupPlan>> = pattern
            .unions
            .iter()
            .map(|block| {
                block
                    .iter()
                    .map(|branch| GroupPlan::build_with(store, branch, &var_names, opts))
                    .collect()
            })
            .collect();
        let optionals: Vec<GroupPlan> = pattern
            .optionals
            .iter()
            .map(|optional| GroupPlan::build_with(store, optional, &var_names, opts))
            .collect();

        GroupPlan {
            var_names,
            patterns: ordered,
            filters_at,
            post_filters,
            unions,
            optionals,
        }
    }

    /// Whether the plan has union or optional sub-plans (disables the
    /// early-stop optimisation).
    pub fn has_subgroups(&self) -> bool {
        !self.unions.is_empty() || !self.optionals.is_empty() || !self.post_filters.is_empty()
    }

    /// Whether any pattern references a constant missing from the store.
    pub fn is_unsatisfiable(&self) -> bool {
        self.patterns.iter().any(PlannedPattern::is_unsatisfiable)
    }
}

fn encode(
    node: &NodePattern,
    store: &TripleStore,
    var_index: &mut impl FnMut(&str, &mut Vec<String>) -> usize,
    var_names: &mut Vec<String>,
) -> Slot {
    match node {
        NodePattern::Var(name) => Slot::Var(var_index(name, var_names)),
        NodePattern::Term(term) => Slot::Const(store.dict().lookup(term)),
    }
}

/// Estimated result cardinality of running `p` next. Lower runs earlier.
///
/// The estimate starts from the *exact* prefix count of the pattern's
/// constant positions (an O(log n) binary-search pair on the store's flat
/// indexes — [`TripleStore::count_pattern`]); an unsatisfiable pattern is
/// free (it empties the result immediately). Each position held by an
/// already-bound variable narrows the scan further at runtime, so the
/// count is discounted by the number of distinct values that position can
/// take: per-predicate distinct subject/object counts when statistics are
/// available and the predicate is constant, store-level distincts for a
/// variable predicate, and a square-root damping when no statistics exist.
/// A pattern sharing no variable with the rows produced so far is a
/// Cartesian product; its estimate is penalised so connected patterns win
/// unless the disconnected one is vastly smaller.
fn estimated_cardinality(
    store: &TripleStore,
    stats: Option<&StoreStats>,
    p: &PlannedPattern,
    bound: &[bool],
) -> f64 {
    if p.is_unsatisfiable() {
        return 0.0;
    }
    let const_of = |s: Slot| match s {
        Slot::Const(id) => id,
        Slot::Var(_) => None,
    };
    let tp = TriplePattern {
        s: const_of(p.s),
        p: const_of(p.p),
        o: const_of(p.o),
    };
    let mut card = store.count_pattern(tp) as f64;

    let bound_var = |s: Slot| matches!(s, Slot::Var(i) if bound[i]);
    let pred_stats = tp.p.and_then(|pid| stats.map(|st| st.get(pid)));
    let discount = |card: f64, distinct: Option<usize>| -> f64 {
        match distinct {
            Some(d) => card / (d.max(1) as f64),
            // No statistics: damp by sqrt, i.e. assume a bound variable
            // keeps roughly the square root of the matching triples.
            None => card.sqrt(),
        }
    };
    let mut card_after = card;
    if bound_var(p.s) {
        let d = match pred_stats {
            Some(ps) => ps.map(|ps| ps.distinct_subjects).or(Some(1)),
            None => stats.map(|st| st.distinct_subjects()),
        };
        card_after = discount(card_after, d);
    }
    if bound_var(p.o) {
        let d = match pred_stats {
            Some(ps) => ps.map(|ps| ps.distinct_objects).or(Some(1)),
            None => stats.map(|st| st.distinct_objects()),
        };
        card_after = discount(card_after, d);
    }
    if bound_var(p.p) {
        let d = stats.map(StoreStats::predicate_count);
        card_after = discount(card_after, d);
    }
    card = card_after.max(f64::MIN_POSITIVE);

    // Cartesian-product penalty: joining a pattern that shares no bound
    // variable multiplies the intermediate result instead of narrowing it.
    let any_bound = bound.iter().any(|b| *b);
    let has_var = p.slots().iter().any(|s| matches!(s, Slot::Var(_)));
    let shares = p
        .slots()
        .iter()
        .any(|s| matches!(s, Slot::Var(i) if bound[*i]));
    if any_bound && has_var && !shares {
        card *= 1e6;
    }
    card
}

/// Earliest pattern level at which every index in `used` is bound.
fn earliest_level(used: &[usize], outer_len: usize, ordered: &[PlannedPattern]) -> usize {
    if used.iter().all(|&v| v < outer_len) {
        return 0;
    }
    let mut bound: Vec<usize> = used.iter().copied().filter(|&v| v >= outer_len).collect();
    for (level, p) in ordered.iter().enumerate() {
        for slot in p.slots() {
            if let Slot::Var(v) = slot {
                bound.retain(|&u| u != v);
            }
        }
        if bound.is_empty() {
            return level + 1;
        }
    }
    ordered.len()
}

fn compile_expr(
    expr: &Expr,
    store: &TripleStore,
    var_names: &[String],
    opts: PlanOptions<'_>,
) -> PExpr {
    match expr {
        Expr::Var(name) => {
            // A filter variable not bound anywhere in the pattern is
            // permanently unbound; represent it as a fresh out-of-range
            // index so evaluation yields "unbound".
            let idx = var_names
                .iter()
                .position(|v| v == name)
                .unwrap_or(usize::MAX);
            PExpr::Var(idx)
        }
        Expr::Const(t) => PExpr::Const(t.clone()),
        Expr::Compare(op, a, b) => PExpr::Compare(
            *op,
            Box::new(compile_expr(a, store, var_names, opts)),
            Box::new(compile_expr(b, store, var_names, opts)),
        ),
        Expr::And(a, b) => PExpr::And(
            Box::new(compile_expr(a, store, var_names, opts)),
            Box::new(compile_expr(b, store, var_names, opts)),
        ),
        Expr::Or(a, b) => PExpr::Or(
            Box::new(compile_expr(a, store, var_names, opts)),
            Box::new(compile_expr(b, store, var_names, opts)),
        ),
        Expr::Not(inner) => PExpr::Not(Box::new(compile_expr(inner, store, var_names, opts))),
        Expr::Call(builtin, args) => PExpr::Call(
            *builtin,
            args.iter()
                .map(|a| compile_expr(a, store, var_names, opts))
                .collect(),
        ),
        Expr::Exists { pattern, negated } => {
            let plan = GroupPlan::build_with(store, pattern, var_names, opts);
            PExpr::Exists {
                plan: Box::new(plan),
                negated: *negated,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::Query;
    use sofya_rdf::Term;

    fn plan_of(store: &TripleStore, q: &str) -> GroupPlan {
        match parse_query(q).unwrap() {
            Query::Select(s) => GroupPlan::build(store, &s.pattern, &[]),
            Query::Ask(p) => GroupPlan::build(store, &p, &[]),
        }
    }

    fn demo_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        s.insert_terms(&Term::iri("b"), &Term::iri("q"), &Term::iri("c"));
        s
    }

    #[test]
    fn constants_resolve_against_dictionary() {
        let store = demo_store();
        let plan = plan_of(&store, "SELECT ?x { ?x <p> <b> }");
        assert!(!plan.is_unsatisfiable());
        let plan = plan_of(&store, "SELECT ?x { ?x <not-there> ?y }");
        assert!(plan.is_unsatisfiable());
    }

    #[test]
    fn ordering_puts_constant_rich_pattern_first() {
        let store = demo_store();
        // `<a> <p> ?x` has two constants; `?x ?p2 ?y` has none.
        let plan = plan_of(&store, "SELECT ?x { ?x ?p2 ?y . <a> <p> ?x }");
        assert!(matches!(plan.patterns[0].s, Slot::Const(Some(_))));
    }

    #[test]
    fn filter_scheduled_at_earliest_possible_level() {
        let store = demo_store();
        let plan = plan_of(
            &store,
            "SELECT ?x { ?x <p> ?y . ?y <q> ?z . FILTER(?x != ?y) }",
        );
        // ?x and ?y are both bound after the first pattern (which mentions
        // both), so the filter must be scheduled at level 1.
        assert_eq!(plan.filters_at[1].len(), 1);
        assert!(plan.filters_at[2].is_empty());
    }

    #[test]
    fn exists_subplan_shares_outer_prefix() {
        let store = demo_store();
        let plan = plan_of(
            &store,
            "SELECT ?x { ?x <p> ?y FILTER NOT EXISTS { ?x <q> ?w } }",
        );
        let exists = plan
            .filters_at
            .iter()
            .flatten()
            .find_map(|f| match f {
                PExpr::Exists { plan, negated } => Some((plan, *negated)),
                _ => None,
            })
            .expect("exists filter present");
        assert!(exists.1);
        // Outer vars x, y are the prefix of the sub-plan's table.
        assert_eq!(&exists.0.var_names[..2], &plan.var_names[..2]);
        assert!(exists.0.var_names.contains(&"w".to_string()));
    }

    #[test]
    fn filter_with_unknown_var_maps_out_of_range() {
        let store = demo_store();
        let plan = plan_of(&store, "SELECT ?x { ?x <p> ?y FILTER(BOUND(?ghost)) }");
        let filter = plan.filters_at.iter().flatten().next().unwrap();
        match filter {
            PExpr::Call(Builtin::Bound, args) => {
                assert_eq!(args[0], PExpr::Var(usize::MAX));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
