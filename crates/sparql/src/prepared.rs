//! Parameterized prepared queries.
//!
//! SOFYA's aligner issues a handful of fixed query *shapes* over and over
//! with different constants (`ASK { <x> <r> ?y }` for thousands of `x`).
//! Paying tokenizer + parser for every instance is pure overhead: a
//! [`Prepared`] query parses the template **once** and afterwards binds
//! constants directly into a clone of the AST — no string formatting, no
//! re-parse.
//!
//! A template is ordinary SPARQL text in which some variables are declared
//! as parameters by name:
//!
//! ```
//! use sofya_rdf::{Term, TripleStore};
//! use sofya_sparql::Prepared;
//!
//! let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
//! let mut store = TripleStore::new();
//! store.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
//! let bound = probe.bind(&[Term::iri("a"), Term::iri("p")]).unwrap();
//! let out = sofya_sparql::execute_ast(&store, &bound).unwrap();
//! assert_eq!(out, sofya_sparql::QueryOutcome::Boolean(true));
//! ```
//!
//! Binding replaces every occurrence of a parameter variable — in triple
//! patterns, `FILTER` expressions, and nested `UNION` / `OPTIONAL` /
//! `EXISTS` groups — with the corresponding constant term. Endpoints that
//! cannot execute an AST directly (remote HTTP endpoints, wrappers keyed
//! by query strings) fall back to [`Prepared::render`], which serialises
//! the bound AST through [`crate::unparse()`].

use crate::ast::{Expr, GroupGraphPattern, NodePattern, Projection, Query};
use crate::error::SparqlError;
use crate::parser::parse_query;
use crate::unparse::unparse;
use sofya_rdf::Term;

/// A parse-once query template with named constant parameters.
#[derive(Debug, Clone)]
pub struct Prepared {
    query: Query,
    params: Vec<String>,
    /// Process-unique template identity (shared by clones), so endpoint
    /// plan caches can key compiled bound plans by `(template, args)`
    /// without serialising the query.
    token: u64,
}

impl Prepared {
    /// Parses `template` and declares the variables named in `params`
    /// (without the `?` sigil) as bind-time constants, in order.
    ///
    /// Every parameter must occur in the template's graph pattern, and
    /// none may appear in the projection or `ORDER BY` (a constant cannot
    /// be projected or sorted by).
    pub fn new(template: &str, params: &[&str]) -> Result<Self, SparqlError> {
        let query = parse_query(template)?;
        let params: Vec<String> = params.iter().map(|p| (*p).to_owned()).collect();
        for (i, param) in params.iter().enumerate() {
            if params[..i].contains(param) {
                return Err(SparqlError::parse(format!(
                    "duplicate prepared parameter ?{param}"
                )));
            }
        }
        let pattern = match &query {
            Query::Select(s) => &s.pattern,
            Query::Ask(p) => p,
        };
        let mut pattern_vars = Vec::new();
        template_vars(pattern, &mut pattern_vars);
        for param in &params {
            if !pattern_vars.contains(param) {
                return Err(SparqlError::parse(format!(
                    "prepared parameter ?{param} does not occur in the template pattern"
                )));
            }
        }
        if let Query::Select(s) = &query {
            for param in &params {
                // `SELECT *` projects every pattern variable, and COUNT(?v)
                // aggregates over one — binding either away at execution
                // time would silently change the result shape.
                let projected = match &s.projection {
                    Projection::Vars(vars) => vars.contains(param),
                    Projection::Star => true,
                    Projection::Count { var, .. } => var.as_ref() == Some(param),
                };
                if projected || s.order_by.iter().any(|k| &k.var == param) {
                    return Err(SparqlError::parse(format!(
                        "prepared parameter ?{param} cannot be projected or ordered by"
                    )));
                }
            }
        }
        static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Ok(Self {
            query,
            params,
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Number of declared parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// A process-unique identity for this template (clones share it).
    /// Endpoint plan caches combine it with the rendered arguments to key
    /// compiled bound plans.
    pub fn cache_token(&self) -> u64 {
        self.token
    }

    /// Binds `args` (one term per parameter, in declaration order) into a
    /// clone of the template AST.
    pub fn bind(&self, args: &[Term]) -> Result<Query, SparqlError> {
        if args.len() != self.params.len() {
            return Err(SparqlError::eval(format!(
                "prepared query expects {} argument(s), got {}",
                self.params.len(),
                args.len()
            )));
        }
        let mut query = self.query.clone();
        match &mut query {
            Query::Select(s) => bind_group(&mut s.pattern, &self.params, args),
            Query::Ask(p) => bind_group(p, &self.params, args),
        }
        Ok(query)
    }

    /// Binds `args` and serialises the result to SPARQL text (the slow
    /// path for endpoints that only speak strings).
    pub fn render(&self, args: &[Term]) -> Result<String, SparqlError> {
        Ok(unparse(&self.bind(args)?))
    }

    /// Whether the template is a `SELECT` (as opposed to an `ASK`).
    pub fn is_select(&self) -> bool {
        matches!(self.query, Query::Select(_))
    }

    /// Binds `args` and then overrides the template's `LIMIT` / `OFFSET`
    /// structurally — the paged-query fast path. The aligner's paging
    /// shapes vary `LIMIT`/`OFFSET` on every call, so threading them
    /// through the AST (instead of formatting a fresh query string per
    /// page) keeps pagination on the zero-parse path.
    ///
    /// `None` leaves the template's own modifier untouched. Errors on
    /// `ASK` templates, which have no solution sequence to page.
    pub fn bind_paged(
        &self,
        args: &[Term],
        limit: Option<usize>,
        offset: Option<usize>,
    ) -> Result<Query, SparqlError> {
        let mut query = self.bind(args)?;
        match &mut query {
            Query::Select(s) => {
                if limit.is_some() {
                    s.limit = limit;
                }
                if offset.is_some() {
                    s.offset = offset;
                }
            }
            Query::Ask(_) => {
                return Err(SparqlError::eval(
                    "LIMIT/OFFSET cannot be applied to an ASK template",
                ));
            }
        }
        Ok(query)
    }

    /// Binds `args` with a `LIMIT`/`OFFSET` override and serialises to
    /// SPARQL text (for endpoints that only speak strings; each page is a
    /// distinct string, so string-keyed caches stay correct).
    pub fn render_paged(
        &self,
        args: &[Term],
        limit: Option<usize>,
        offset: Option<usize>,
    ) -> Result<String, SparqlError> {
        Ok(unparse(&self.bind_paged(args, limit, offset)?))
    }
}

fn lookup<'a>(params: &[String], args: &'a [Term], name: &str) -> Option<&'a Term> {
    params.iter().position(|p| p == name).map(|i| &args[i])
}

/// Every variable of the group tree, including those only referenced by
/// filter expressions and `EXISTS` sub-patterns (unlike
/// [`crate::ast::collect_pattern_vars`], which only walks triple
/// positions — parameters may legitimately appear in filters only).
fn template_vars(group: &GroupGraphPattern, vars: &mut Vec<String>) {
    crate::ast::collect_pattern_vars(group, vars);
    fn expr_vars(expr: &Expr, vars: &mut Vec<String>) {
        match expr {
            Expr::Var(v) => {
                if !vars.iter().any(|existing| existing == v) {
                    vars.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Compare(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                expr_vars(a, vars);
                expr_vars(b, vars);
            }
            Expr::Not(inner) => expr_vars(inner, vars),
            Expr::Call(_, args) => args.iter().for_each(|a| expr_vars(a, vars)),
            Expr::Exists { pattern, .. } => template_vars(pattern, vars),
        }
    }
    fn filter_walk(group: &GroupGraphPattern, vars: &mut Vec<String>) {
        group.filters.iter().for_each(|f| expr_vars(f, vars));
        for block in &group.unions {
            block.iter().for_each(|b| filter_walk(b, vars));
        }
        group.optionals.iter().for_each(|o| filter_walk(o, vars));
    }
    filter_walk(group, vars);
}

fn bind_group(group: &mut GroupGraphPattern, params: &[String], args: &[Term]) {
    for triple in &mut group.triples {
        for node in [&mut triple.s, &mut triple.p, &mut triple.o] {
            if let NodePattern::Var(name) = node {
                if let Some(term) = lookup(params, args, name) {
                    *node = NodePattern::Term(term.clone());
                }
            }
        }
    }
    for filter in &mut group.filters {
        bind_expr(filter, params, args);
    }
    for block in &mut group.unions {
        for branch in block {
            bind_group(branch, params, args);
        }
    }
    for optional in &mut group.optionals {
        bind_group(optional, params, args);
    }
}

fn bind_expr(expr: &mut Expr, params: &[String], args: &[Term]) {
    match expr {
        Expr::Var(name) => {
            if let Some(term) = lookup(params, args, name) {
                *expr = Expr::Const(term.clone());
            }
        }
        Expr::Const(_) => {}
        Expr::Compare(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            bind_expr(a, params, args);
            bind_expr(b, params, args);
        }
        Expr::Not(inner) => bind_expr(inner, params, args),
        Expr::Call(_, call_args) => {
            for a in call_args {
                bind_expr(a, params, args);
            }
        }
        Expr::Exists { pattern, .. } => bind_group(pattern, params, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{execute, execute_ask, execute_ast};
    use crate::QueryOutcome;
    use sofya_rdf::TripleStore;

    fn demo_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_terms(&Term::iri("e:a"), &Term::iri("r:p"), &Term::iri("e:b"));
        s.insert_terms(&Term::iri("e:a"), &Term::iri("r:q"), &Term::iri("e:c"));
        s.insert_terms(&Term::iri("e:b"), &Term::iri("r:p"), &Term::iri("e:c"));
        s
    }

    #[test]
    fn bound_ask_matches_string_query() {
        let store = demo_store();
        let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
        for (s, r, want) in [
            ("e:a", "r:p", true),
            ("e:a", "r:q", true),
            ("e:c", "r:p", false),
        ] {
            let bound = probe.bind(&[Term::iri(s), Term::iri(r)]).unwrap();
            let direct = execute_ast(&store, &bound).unwrap();
            let via_string = execute_ask(&store, &format!("ASK {{ <{s}> <{r}> ?y }}")).unwrap();
            assert_eq!(direct, QueryOutcome::Boolean(want));
            assert_eq!(via_string, want);
        }
    }

    #[test]
    fn bound_select_matches_string_query() {
        let store = demo_store();
        let q = Prepared::new(
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p",
            &["s", "o"],
        )
        .unwrap();
        let bound = q.bind(&[Term::iri("e:a"), Term::iri("e:b")]).unwrap();
        let QueryOutcome::Solutions(rs) = execute_ast(&store, &bound).unwrap() else {
            panic!("expected solutions");
        };
        let oracle = execute(
            &store,
            "SELECT DISTINCT ?p WHERE { <e:a> ?p <e:b> } ORDER BY ?p",
        )
        .unwrap();
        assert_eq!(rs, oracle);
    }

    #[test]
    fn render_produces_equivalent_text() {
        let store = demo_store();
        let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
        let text = probe.render(&[Term::iri("e:a"), Term::iri("r:p")]).unwrap();
        assert!(execute_ask(&store, &text).unwrap());
    }

    #[test]
    fn binds_inside_filters_and_exists() {
        let store = demo_store();
        let q = Prepared::new(
            "SELECT ?x { ?x <r:p> ?y FILTER NOT EXISTS { ?x <r:q> ?c } }",
            &["c"],
        )
        .unwrap();
        let bound = q.bind(&[Term::iri("e:c")]).unwrap();
        let QueryOutcome::Solutions(rs) = execute_ast(&store, &bound).unwrap() else {
            panic!("expected solutions");
        };
        // e:a has r:q→e:c, so only e:b survives.
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:b")));
    }

    #[test]
    fn literal_arguments_bind() {
        let mut store = TripleStore::new();
        store.insert_terms(
            &Term::iri("e:a"),
            &Term::iri("r:name"),
            &Term::literal("Ann"),
        );
        let probe = Prepared::new("ASK { ?s <r:name> ?v }", &["s", "v"]).unwrap();
        let hit = probe
            .bind(&[Term::iri("e:a"), Term::literal("Ann")])
            .unwrap();
        let miss = probe
            .bind(&[Term::iri("e:a"), Term::literal("Bob")])
            .unwrap();
        assert_eq!(
            execute_ast(&store, &hit).unwrap(),
            QueryOutcome::Boolean(true)
        );
        assert_eq!(
            execute_ast(&store, &miss).unwrap(),
            QueryOutcome::Boolean(false)
        );
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let probe = Prepared::new("ASK { ?s <r:p> ?y }", &["s"]).unwrap();
        assert!(probe.bind(&[]).is_err());
        assert!(probe.bind(&[Term::iri("a"), Term::iri("b")]).is_err());
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        assert!(Prepared::new("ASK { ?s <r:p> ?y }", &["ghost"]).is_err());
    }

    #[test]
    fn duplicate_parameter_is_rejected() {
        assert!(Prepared::new("ASK { ?s <r:p> ?y }", &["s", "s"]).is_err());
    }

    #[test]
    fn star_and_count_projections_reject_parameters() {
        assert!(Prepared::new("SELECT * { ?s <r:p> ?y }", &["s"]).is_err());
        assert!(Prepared::new("SELECT (COUNT(?y) AS ?n) { ?s <r:p> ?y }", &["y"]).is_err());
        // COUNT(*) and COUNT over a different variable are fine.
        assert!(Prepared::new("SELECT (COUNT(*) AS ?n) { ?s <r:p> ?y }", &["s"]).is_ok());
        assert!(Prepared::new("SELECT (COUNT(?y) AS ?n) { ?s <r:p> ?y }", &["s"]).is_ok());
    }

    #[test]
    fn bind_paged_overrides_limit_and_offset() {
        let store = demo_store();
        let q = Prepared::new("SELECT ?y WHERE { ?s ?p ?y } ORDER BY ?y", &["s"]).unwrap();
        let all = {
            let QueryOutcome::Solutions(rs) =
                execute_ast(&store, &q.bind(&[Term::iri("e:a")]).unwrap()).unwrap()
            else {
                panic!("expected solutions");
            };
            rs
        };
        assert_eq!(all.len(), 2);
        for (limit, offset) in [(Some(1), None), (Some(1), Some(1)), (None, Some(1))] {
            let bound = q.bind_paged(&[Term::iri("e:a")], limit, offset).unwrap();
            let QueryOutcome::Solutions(page) = execute_ast(&store, &bound).unwrap() else {
                panic!("expected solutions");
            };
            let mut text = "SELECT ?y WHERE { <e:a> ?p ?y } ORDER BY ?y".to_owned();
            if let Some(l) = limit {
                text.push_str(&format!(" LIMIT {l}"));
            }
            if let Some(o) = offset {
                text.push_str(&format!(" OFFSET {o}"));
            }
            let oracle = execute(&store, &text).unwrap();
            assert_eq!(page, oracle, "limit {limit:?} offset {offset:?}");
        }
    }

    #[test]
    fn bind_paged_none_keeps_template_modifiers() {
        let store = demo_store();
        let q = Prepared::new("SELECT ?y WHERE { ?s ?p ?y } ORDER BY ?y LIMIT 1", &["s"]).unwrap();
        let bound = q.bind_paged(&[Term::iri("e:a")], None, None).unwrap();
        let QueryOutcome::Solutions(rs) = execute_ast(&store, &bound).unwrap() else {
            panic!("expected solutions");
        };
        assert_eq!(rs.len(), 1, "template's own LIMIT 1 must survive");
    }

    #[test]
    fn bind_paged_rejects_ask_and_render_paged_round_trips() {
        let ask = Prepared::new("ASK { ?s <r:p> ?y }", &["s"]).unwrap();
        assert!(ask.bind_paged(&[Term::iri("e:a")], Some(1), None).is_err());
        assert!(!ask.is_select());

        let store = demo_store();
        let q = Prepared::new("SELECT ?y WHERE { ?s ?p ?y } ORDER BY ?y", &["s"]).unwrap();
        assert!(q.is_select());
        let text = q
            .render_paged(&[Term::iri("e:a")], Some(1), Some(1))
            .unwrap();
        let via_string = execute(&store, &text).unwrap();
        let QueryOutcome::Solutions(direct) = execute_ast(
            &store,
            &q.bind_paged(&[Term::iri("e:a")], Some(1), Some(1)).unwrap(),
        )
        .unwrap() else {
            panic!("expected solutions");
        };
        assert_eq!(via_string, direct);
    }

    #[test]
    fn projected_parameter_is_rejected() {
        assert!(Prepared::new("SELECT ?s { ?s <r:p> ?y }", &["s"]).is_err());
        assert!(Prepared::new("SELECT ?y { ?s <r:p> ?y } ORDER BY ?s", &["s"]).is_err());
    }
}
