//! Parameterized prepared queries.
//!
//! SOFYA's aligner issues a handful of fixed query *shapes* over and over
//! with different constants (`ASK { <x> <r> ?y }` for thousands of `x`).
//! Paying tokenizer + parser for every instance is pure overhead: a
//! [`Prepared`] query parses the template **once** and afterwards binds
//! constants directly into a clone of the AST — no string formatting, no
//! re-parse.
//!
//! A template is ordinary SPARQL text in which some variables are declared
//! as parameters by name:
//!
//! ```
//! use sofya_rdf::{Term, TripleStore};
//! use sofya_sparql::Prepared;
//!
//! let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
//! let mut store = TripleStore::new();
//! store.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
//! let bound = probe.bind(&[Term::iri("a"), Term::iri("p")]).unwrap();
//! let out = sofya_sparql::execute_ast(&store, &bound).unwrap();
//! assert_eq!(out, sofya_sparql::QueryOutcome::Boolean(true));
//! ```
//!
//! Binding replaces every occurrence of a parameter variable — in triple
//! patterns, `FILTER` expressions, and nested `UNION` / `OPTIONAL` /
//! `EXISTS` groups — with the corresponding constant term. Endpoints that
//! cannot execute an AST directly (remote HTTP endpoints, wrappers keyed
//! by query strings) fall back to [`Prepared::render`], which serialises
//! the bound AST through [`crate::unparse`].

use crate::ast::{Expr, GroupGraphPattern, NodePattern, Projection, Query};
use crate::error::SparqlError;
use crate::parser::parse_query;
use crate::unparse::unparse;
use sofya_rdf::Term;

/// A parse-once query template with named constant parameters.
#[derive(Debug, Clone)]
pub struct Prepared {
    query: Query,
    params: Vec<String>,
}

impl Prepared {
    /// Parses `template` and declares the variables named in `params`
    /// (without the `?` sigil) as bind-time constants, in order.
    ///
    /// Every parameter must occur in the template's graph pattern, and
    /// none may appear in the projection or `ORDER BY` (a constant cannot
    /// be projected or sorted by).
    pub fn new(template: &str, params: &[&str]) -> Result<Self, SparqlError> {
        let query = parse_query(template)?;
        let params: Vec<String> = params.iter().map(|p| (*p).to_owned()).collect();
        for (i, param) in params.iter().enumerate() {
            if params[..i].contains(param) {
                return Err(SparqlError::parse(format!(
                    "duplicate prepared parameter ?{param}"
                )));
            }
        }
        let pattern = match &query {
            Query::Select(s) => &s.pattern,
            Query::Ask(p) => p,
        };
        let mut pattern_vars = Vec::new();
        template_vars(pattern, &mut pattern_vars);
        for param in &params {
            if !pattern_vars.contains(param) {
                return Err(SparqlError::parse(format!(
                    "prepared parameter ?{param} does not occur in the template pattern"
                )));
            }
        }
        if let Query::Select(s) = &query {
            for param in &params {
                // `SELECT *` projects every pattern variable, and COUNT(?v)
                // aggregates over one — binding either away at execution
                // time would silently change the result shape.
                let projected = match &s.projection {
                    Projection::Vars(vars) => vars.contains(param),
                    Projection::Star => true,
                    Projection::Count { var, .. } => var.as_ref() == Some(param),
                };
                if projected || s.order_by.iter().any(|k| &k.var == param) {
                    return Err(SparqlError::parse(format!(
                        "prepared parameter ?{param} cannot be projected or ordered by"
                    )));
                }
            }
        }
        Ok(Self { query, params })
    }

    /// Number of declared parameters.
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Binds `args` (one term per parameter, in declaration order) into a
    /// clone of the template AST.
    pub fn bind(&self, args: &[Term]) -> Result<Query, SparqlError> {
        if args.len() != self.params.len() {
            return Err(SparqlError::eval(format!(
                "prepared query expects {} argument(s), got {}",
                self.params.len(),
                args.len()
            )));
        }
        let mut query = self.query.clone();
        match &mut query {
            Query::Select(s) => bind_group(&mut s.pattern, &self.params, args),
            Query::Ask(p) => bind_group(p, &self.params, args),
        }
        Ok(query)
    }

    /// Binds `args` and serialises the result to SPARQL text (the slow
    /// path for endpoints that only speak strings).
    pub fn render(&self, args: &[Term]) -> Result<String, SparqlError> {
        Ok(unparse(&self.bind(args)?))
    }
}

fn lookup<'a>(params: &[String], args: &'a [Term], name: &str) -> Option<&'a Term> {
    params.iter().position(|p| p == name).map(|i| &args[i])
}

/// Every variable of the group tree, including those only referenced by
/// filter expressions and `EXISTS` sub-patterns (unlike
/// [`crate::ast::collect_pattern_vars`], which only walks triple
/// positions — parameters may legitimately appear in filters only).
fn template_vars(group: &GroupGraphPattern, vars: &mut Vec<String>) {
    crate::ast::collect_pattern_vars(group, vars);
    fn expr_vars(expr: &Expr, vars: &mut Vec<String>) {
        match expr {
            Expr::Var(v) => {
                if !vars.iter().any(|existing| existing == v) {
                    vars.push(v.clone());
                }
            }
            Expr::Const(_) => {}
            Expr::Compare(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                expr_vars(a, vars);
                expr_vars(b, vars);
            }
            Expr::Not(inner) => expr_vars(inner, vars),
            Expr::Call(_, args) => args.iter().for_each(|a| expr_vars(a, vars)),
            Expr::Exists { pattern, .. } => template_vars(pattern, vars),
        }
    }
    fn filter_walk(group: &GroupGraphPattern, vars: &mut Vec<String>) {
        group.filters.iter().for_each(|f| expr_vars(f, vars));
        for block in &group.unions {
            block.iter().for_each(|b| filter_walk(b, vars));
        }
        group.optionals.iter().for_each(|o| filter_walk(o, vars));
    }
    filter_walk(group, vars);
}

fn bind_group(group: &mut GroupGraphPattern, params: &[String], args: &[Term]) {
    for triple in &mut group.triples {
        for node in [&mut triple.s, &mut triple.p, &mut triple.o] {
            if let NodePattern::Var(name) = node {
                if let Some(term) = lookup(params, args, name) {
                    *node = NodePattern::Term(term.clone());
                }
            }
        }
    }
    for filter in &mut group.filters {
        bind_expr(filter, params, args);
    }
    for block in &mut group.unions {
        for branch in block {
            bind_group(branch, params, args);
        }
    }
    for optional in &mut group.optionals {
        bind_group(optional, params, args);
    }
}

fn bind_expr(expr: &mut Expr, params: &[String], args: &[Term]) {
    match expr {
        Expr::Var(name) => {
            if let Some(term) = lookup(params, args, name) {
                *expr = Expr::Const(term.clone());
            }
        }
        Expr::Const(_) => {}
        Expr::Compare(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
            bind_expr(a, params, args);
            bind_expr(b, params, args);
        }
        Expr::Not(inner) => bind_expr(inner, params, args),
        Expr::Call(_, call_args) => {
            for a in call_args {
                bind_expr(a, params, args);
            }
        }
        Expr::Exists { pattern, .. } => bind_group(pattern, params, args),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{execute, execute_ask, execute_ast};
    use crate::QueryOutcome;
    use sofya_rdf::TripleStore;

    fn demo_store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert_terms(&Term::iri("e:a"), &Term::iri("r:p"), &Term::iri("e:b"));
        s.insert_terms(&Term::iri("e:a"), &Term::iri("r:q"), &Term::iri("e:c"));
        s.insert_terms(&Term::iri("e:b"), &Term::iri("r:p"), &Term::iri("e:c"));
        s
    }

    #[test]
    fn bound_ask_matches_string_query() {
        let store = demo_store();
        let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
        for (s, r, want) in [
            ("e:a", "r:p", true),
            ("e:a", "r:q", true),
            ("e:c", "r:p", false),
        ] {
            let bound = probe.bind(&[Term::iri(s), Term::iri(r)]).unwrap();
            let direct = execute_ast(&store, &bound).unwrap();
            let via_string = execute_ask(&store, &format!("ASK {{ <{s}> <{r}> ?y }}")).unwrap();
            assert_eq!(direct, QueryOutcome::Boolean(want));
            assert_eq!(via_string, want);
        }
    }

    #[test]
    fn bound_select_matches_string_query() {
        let store = demo_store();
        let q = Prepared::new(
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p",
            &["s", "o"],
        )
        .unwrap();
        let bound = q.bind(&[Term::iri("e:a"), Term::iri("e:b")]).unwrap();
        let QueryOutcome::Solutions(rs) = execute_ast(&store, &bound).unwrap() else {
            panic!("expected solutions");
        };
        let oracle = execute(
            &store,
            "SELECT DISTINCT ?p WHERE { <e:a> ?p <e:b> } ORDER BY ?p",
        )
        .unwrap();
        assert_eq!(rs, oracle);
    }

    #[test]
    fn render_produces_equivalent_text() {
        let store = demo_store();
        let probe = Prepared::new("ASK { ?s ?r ?y }", &["s", "r"]).unwrap();
        let text = probe.render(&[Term::iri("e:a"), Term::iri("r:p")]).unwrap();
        assert!(execute_ask(&store, &text).unwrap());
    }

    #[test]
    fn binds_inside_filters_and_exists() {
        let store = demo_store();
        let q = Prepared::new(
            "SELECT ?x { ?x <r:p> ?y FILTER NOT EXISTS { ?x <r:q> ?c } }",
            &["c"],
        )
        .unwrap();
        let bound = q.bind(&[Term::iri("e:c")]).unwrap();
        let QueryOutcome::Solutions(rs) = execute_ast(&store, &bound).unwrap() else {
            panic!("expected solutions");
        };
        // e:a has r:q→e:c, so only e:b survives.
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:b")));
    }

    #[test]
    fn literal_arguments_bind() {
        let mut store = TripleStore::new();
        store.insert_terms(
            &Term::iri("e:a"),
            &Term::iri("r:name"),
            &Term::literal("Ann"),
        );
        let probe = Prepared::new("ASK { ?s <r:name> ?v }", &["s", "v"]).unwrap();
        let hit = probe
            .bind(&[Term::iri("e:a"), Term::literal("Ann")])
            .unwrap();
        let miss = probe
            .bind(&[Term::iri("e:a"), Term::literal("Bob")])
            .unwrap();
        assert_eq!(
            execute_ast(&store, &hit).unwrap(),
            QueryOutcome::Boolean(true)
        );
        assert_eq!(
            execute_ast(&store, &miss).unwrap(),
            QueryOutcome::Boolean(false)
        );
    }

    #[test]
    fn wrong_arity_is_an_error() {
        let probe = Prepared::new("ASK { ?s <r:p> ?y }", &["s"]).unwrap();
        assert!(probe.bind(&[]).is_err());
        assert!(probe.bind(&[Term::iri("a"), Term::iri("b")]).is_err());
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        assert!(Prepared::new("ASK { ?s <r:p> ?y }", &["ghost"]).is_err());
    }

    #[test]
    fn duplicate_parameter_is_rejected() {
        assert!(Prepared::new("ASK { ?s <r:p> ?y }", &["s", "s"]).is_err());
    }

    #[test]
    fn star_and_count_projections_reject_parameters() {
        assert!(Prepared::new("SELECT * { ?s <r:p> ?y }", &["s"]).is_err());
        assert!(Prepared::new("SELECT (COUNT(?y) AS ?n) { ?s <r:p> ?y }", &["y"]).is_err());
        // COUNT(*) and COUNT over a different variable are fine.
        assert!(Prepared::new("SELECT (COUNT(*) AS ?n) { ?s <r:p> ?y }", &["s"]).is_ok());
        assert!(Prepared::new("SELECT (COUNT(?y) AS ?n) { ?s <r:p> ?y }", &["s"]).is_ok());
    }

    #[test]
    fn projected_parameter_is_rejected() {
        assert!(Prepared::new("SELECT ?s { ?s <r:p> ?y }", &["s"]).is_err());
        assert!(Prepared::new("SELECT ?y { ?s <r:p> ?y } ORDER BY ?s", &["s"]).is_err());
    }
}
