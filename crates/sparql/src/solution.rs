//! Query solutions: the tabular results a SELECT query produces.
//!
//! Rows hold owned [`Term`]s, but the evaluator keeps solutions at the
//! interned-id level through DISTINCT / ORDER BY / OFFSET / LIMIT and only
//! materialises the rows that survive pagination, so a `ResultSet` never
//! carries more `String` clones than its final size. Consumers that want
//! the terms themselves should use [`ResultSet::into_parts`] instead of
//! cloning out of [`ResultSet::rows`].

use sofya_rdf::Term;

/// A table of solutions: named variables (columns) and rows of optional
/// terms. This is what a remote SPARQL endpoint would serialise as JSON or
/// XML; here it stays in memory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    vars: Vec<String>,
    rows: Vec<Vec<Option<Term>>>,
}

impl ResultSet {
    /// Creates a result set. Every row must have `vars.len()` cells.
    pub fn new(vars: Vec<String>, rows: Vec<Vec<Option<Term>>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == vars.len()));
        Self { vars, rows }
    }

    /// The projected variable names, in projection order.
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Number of solution rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw rows.
    pub fn rows(&self) -> &[Vec<Option<Term>>] {
        &self.rows
    }

    /// Consumes the result set into `(vars, rows)`, letting callers move
    /// the terms out instead of cloning them.
    pub fn into_parts(self) -> (Vec<String>, Vec<Vec<Option<Term>>>) {
        (self.vars, self.rows)
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &Vec<Option<Term>>> {
        self.rows.iter()
    }

    /// Index of a variable, if projected.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == name)
    }

    /// The cell for `(row, var)`.
    pub fn cell(&self, row: usize, var: &str) -> Option<&Term> {
        let col = self.var_index(var)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// All bound values of one column, skipping unbound cells.
    pub fn column(&self, var: &str) -> Vec<&Term> {
        match self.var_index(var) {
            Some(col) => self.rows.iter().filter_map(|r| r[col].as_ref()).collect(),
            None => Vec::new(),
        }
    }

    /// Convenience: the single integer value of a one-row aggregate result
    /// (e.g. `SELECT (COUNT(*) AS ?c)`).
    pub fn single_integer(&self) -> Option<i64> {
        if self.rows.len() != 1 || self.vars.len() != 1 {
            return None;
        }
        self.rows[0][0].as_ref()?.integer_value()
    }

    /// Estimated number of cells transferred (for endpoint accounting):
    /// rows × columns.
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet::new(
            vec!["x".into(), "y".into()],
            vec![
                vec![Some(Term::iri("a")), Some(Term::literal("1"))],
                vec![Some(Term::iri("b")), None],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let rs = sample();
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.vars(), &["x".to_string(), "y".to_string()]);
        assert_eq!(rs.cell_count(), 4);
    }

    #[test]
    fn cell_lookup() {
        let rs = sample();
        assert_eq!(rs.cell(0, "x"), Some(&Term::iri("a")));
        assert_eq!(rs.cell(1, "y"), None);
        assert_eq!(rs.cell(0, "zzz"), None);
        assert_eq!(rs.cell(9, "x"), None);
    }

    #[test]
    fn column_skips_unbound() {
        let rs = sample();
        assert_eq!(rs.column("y").len(), 1);
        assert_eq!(rs.column("x").len(), 2);
        assert!(rs.column("nope").is_empty());
    }

    #[test]
    fn single_integer_only_for_one_by_one() {
        let rs = ResultSet::new(vec!["c".into()], vec![vec![Some(Term::integer(7))]]);
        assert_eq!(rs.single_integer(), Some(7));
        assert_eq!(sample().single_integer(), None);
    }
}
