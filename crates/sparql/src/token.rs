//! SPARQL lexer.
//!
//! Produces a flat token stream; keywords are recognised case-insensitively
//! as SPARQL requires. IRIs are delivered without angle brackets and string
//! literals without quotes (escape sequences already decoded).

use crate::error::SparqlError;
use sofya_rdf::term::unescape_literal;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Case-normalised keyword, e.g. `SELECT`, `WHERE`, `FILTER`.
    Keyword(String),
    /// Variable without the leading `?`/`$`.
    Var(String),
    /// IRI without angle brackets.
    Iri(String),
    /// String literal content (unescaped).
    Str(String),
    /// Language tag without `@`.
    LangTag(String),
    /// Integer literal.
    Integer(i64),
    /// Blank node label without `_:`.
    BNode(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `^^`
    DoubleCaret,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<` (only in expression context; the lexer always resolves `<…>` to
    /// an IRI when the bracket closes on the same line without whitespace,
    /// so a bare `<` token is comparison)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "DISTINCT",
    "WHERE",
    "FILTER",
    "LIMIT",
    "OFFSET",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "ASK",
    "COUNT",
    "AS",
    "BOUND",
    "STR",
    "LANG",
    "DATATYPE",
    "ISIRI",
    "ISLITERAL",
    "ISBLANK",
    "STRSTARTS",
    "STRENDS",
    "CONTAINS",
    "REGEX",
    "EXISTS",
    "NOT",
    "TRUE",
    "FALSE",
    "UNION",
    "OPTIONAL",
];

/// Tokenises a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(SparqlError::lex(i, "lone '&'"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    tokens.push(Token::OrOr);
                    i += 2;
                } else {
                    return Err(SparqlError::lex(i, "lone '|'"));
                }
            }
            '^' => {
                if bytes.get(i + 1) == Some(&b'^') {
                    tokens.push(Token::DoubleCaret);
                    i += 2;
                } else {
                    return Err(SparqlError::lex(i, "lone '^'"));
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '<' => {
                // Try to lex an IRI: `<` followed by non-space chars up to `>`.
                let rest = &input[i + 1..];
                if let Some(close) = rest.find('>') {
                    let candidate = &rest[..close];
                    if !candidate.contains(char::is_whitespace) && !candidate.contains('<') {
                        tokens.push(Token::Iri(candidate.to_owned()));
                        i += close + 2;
                        continue;
                    }
                }
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '?' | '$' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end == start {
                    return Err(SparqlError::lex(i, "empty variable name"));
                }
                tokens.push(Token::Var(input[start..end].to_owned()));
                i = end;
            }
            '"' => {
                let rest = &input[i + 1..];
                let rbytes = rest.as_bytes();
                let mut j = 0;
                let mut escaped = false;
                let close = loop {
                    if j >= rbytes.len() {
                        return Err(SparqlError::lex(i, "unterminated string literal"));
                    }
                    match rbytes[j] {
                        b'\\' if !escaped => escaped = true,
                        b'"' if !escaped => break j,
                        _ => escaped = false,
                    }
                    j += 1;
                };
                tokens.push(Token::Str(unescape_literal(&rest[..close])));
                i += close + 2;
            }
            '@' => {
                let start = i + 1;
                let mut end = start;
                while end < bytes.len()
                    && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'-')
                {
                    end += 1;
                }
                if end == start {
                    return Err(SparqlError::lex(i, "empty language tag"));
                }
                tokens.push(Token::LangTag(input[start..end].to_owned()));
                i = end;
            }
            '_' => {
                if bytes.get(i + 1) == Some(&b':') {
                    let start = i + 2;
                    let mut end = start;
                    while end < bytes.len()
                        && ((bytes[end] as char).is_ascii_alphanumeric() || bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    if end == start {
                        return Err(SparqlError::lex(i, "empty blank node label"));
                    }
                    tokens.push(Token::BNode(input[start..end].to_owned()));
                    i = end;
                } else {
                    return Err(SparqlError::lex(i, "unexpected '_'"));
                }
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                let mut end = if c == '-' || c == '+' { i + 1 } else { i };
                while end < bytes.len() && (bytes[end] as char).is_ascii_digit() {
                    end += 1;
                }
                if end == start || (end == start + 1 && (c == '-' || c == '+')) {
                    return Err(SparqlError::lex(i, format!("unexpected character '{c}'")));
                }
                let value: i64 = input[start..end]
                    .parse()
                    .map_err(|_| SparqlError::lex(i, "integer out of range"))?;
                tokens.push(Token::Integer(value));
                i = end;
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                let mut end = i;
                while end < bytes.len() && (bytes[end] as char).is_ascii_alphanumeric() {
                    end += 1;
                }
                let word = input[start..end].to_ascii_uppercase();
                if KEYWORDS.contains(&word.as_str()) {
                    tokens.push(Token::Keyword(word));
                } else {
                    return Err(SparqlError::lex(
                        i,
                        format!("unknown keyword or bare name '{}'", &input[start..end]),
                    ));
                }
                i = end;
            }
            other => {
                return Err(SparqlError::lex(
                    i,
                    format!("unexpected character '{other}'"),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select_query() {
        let toks = tokenize("SELECT ?x WHERE { ?x <p> \"v\" . }").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Var("x".into()),
                Token::Keyword("WHERE".into()),
                Token::LBrace,
                Token::Var("x".into()),
                Token::Iri("p".into()),
                Token::Str("v".into()),
                Token::Dot,
                Token::RBrace,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = tokenize("select Where filter").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("WHERE".into()),
                Token::Keyword("FILTER".into()),
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("= != < <= > >= ! && ||").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Eq,
                Token::Neq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Bang,
                Token::AndAnd,
                Token::OrOr,
            ]
        );
    }

    #[test]
    fn lt_followed_by_iri_like_text_prefers_iri() {
        // `?a < ?b` must lex as comparison, `<p>` as IRI.
        let toks = tokenize("?a < 3").unwrap();
        assert_eq!(toks[1], Token::Lt);
        let toks = tokenize("<http://x/p>").unwrap();
        assert_eq!(toks[0], Token::Iri("http://x/p".into()));
    }

    #[test]
    fn typed_and_lang_literals() {
        let toks = tokenize("\"42\"^^<xsd:int> \"hi\"@en").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Str("42".into()),
                Token::DoubleCaret,
                Token::Iri("xsd:int".into()),
                Token::Str("hi".into()),
                Token::LangTag("en".into()),
            ]
        );
    }

    #[test]
    fn integers_with_sign() {
        let toks = tokenize("10 -3 +7").unwrap();
        assert_eq!(
            toks,
            vec![Token::Integer(10), Token::Integer(-3), Token::Integer(7)]
        );
    }

    #[test]
    fn string_escapes_are_decoded() {
        let toks = tokenize(r#""a\"b\n""#).unwrap();
        assert_eq!(toks, vec![Token::Str("a\"b\n".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT # everything\n ?x").unwrap();
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn bnode_labels() {
        let toks = tokenize("_:b1").unwrap();
        assert_eq!(toks, vec![Token::BNode("b1".into())]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn rejects_unknown_bare_word() {
        assert!(tokenize("SELECT bogusword").is_err());
    }

    #[test]
    fn rejects_lone_ampersand() {
        assert!(tokenize("?a & ?b").is_err());
    }
}
