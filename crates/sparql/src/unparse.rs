//! AST → query-string serialisation.
//!
//! Needed by query *rewriting* (SOFYA's motivating use case: take a query
//! written for KB `K`, align its relations on the fly, and re-issue it
//! against KB `K'`). `parse_query(unparse(q))` is the identity on the
//! AST, which the round-trip tests below and the workspace property tests
//! enforce.

use crate::ast::{
    Builtin, CompareOp, Expr, GroupGraphPattern, NodePattern, Projection, Query, SelectQuery,
    TriplePatternAst,
};
use sofya_rdf::Term;
use std::fmt::Write;

/// Serialises a query back to SPARQL text.
pub fn unparse(query: &Query) -> String {
    match query {
        Query::Select(s) => unparse_select(s),
        Query::Ask(p) => format!("ASK {}", unparse_group(p)),
    }
}

fn unparse_select(q: &SelectQuery) -> String {
    let mut out = String::from("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    match &q.projection {
        Projection::Star => out.push('*'),
        Projection::Vars(vars) => {
            let names: Vec<String> = vars.iter().map(|v| format!("?{v}")).collect();
            out.push_str(&names.join(" "));
        }
        Projection::Count {
            var,
            distinct,
            alias,
        } => {
            out.push_str("(COUNT(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            match var {
                Some(v) => {
                    let _ = write!(out, "?{v}");
                }
                None => out.push('*'),
            }
            let _ = write!(out, ") AS ?{alias})");
        }
    }
    out.push_str(" WHERE ");
    out.push_str(&unparse_group(&q.pattern));
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for key in &q.order_by {
            if key.descending {
                let _ = write!(out, " DESC(?{})", key.var);
            } else {
                let _ = write!(out, " ?{}", key.var);
            }
        }
    }
    if let Some(limit) = q.limit {
        let _ = write!(out, " LIMIT {limit}");
    }
    if let Some(offset) = q.offset {
        let _ = write!(out, " OFFSET {offset}");
    }
    out
}

fn unparse_group(group: &GroupGraphPattern) -> String {
    let mut out = String::from("{ ");
    for tp in &group.triples {
        out.push_str(&unparse_triple(tp));
        out.push_str(" . ");
    }
    for block in &group.unions {
        let rendered: Vec<String> = block.iter().map(unparse_group).collect();
        out.push_str(&rendered.join(" UNION "));
        out.push_str(" . ");
    }
    for optional in &group.optionals {
        let _ = write!(out, "OPTIONAL {} . ", unparse_group(optional));
    }
    for filter in &group.filters {
        let _ = write!(out, "FILTER({}) . ", unparse_expr(filter));
    }
    out.push('}');
    out
}

fn unparse_triple(tp: &TriplePatternAst) -> String {
    format!(
        "{} {} {}",
        unparse_node(&tp.s),
        unparse_node(&tp.p),
        unparse_node(&tp.o)
    )
}

fn unparse_node(node: &NodePattern) -> String {
    match node {
        NodePattern::Var(v) => format!("?{v}"),
        NodePattern::Term(t) => unparse_term(t),
    }
}

fn unparse_term(term: &Term) -> String {
    // N-Triples syntax is valid SPARQL for constants.
    term.to_string()
}

fn compare_op(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::Neq => "!=",
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
    }
}

fn builtin_name(b: Builtin) -> &'static str {
    match b {
        Builtin::Bound => "BOUND",
        Builtin::Str => "STR",
        Builtin::Lang => "LANG",
        Builtin::Datatype => "DATATYPE",
        Builtin::IsIri => "ISIRI",
        Builtin::IsLiteral => "ISLITERAL",
        Builtin::IsBlank => "ISBLANK",
        Builtin::StrStarts => "STRSTARTS",
        Builtin::StrEnds => "STRENDS",
        Builtin::Contains => "CONTAINS",
        Builtin::Regex => "REGEX",
    }
}

fn unparse_expr(expr: &Expr) -> String {
    match expr {
        Expr::Var(v) => format!("?{v}"),
        Expr::Const(t) => unparse_term(t),
        Expr::Compare(op, a, b) => {
            format!(
                "({} {} {})",
                unparse_expr(a),
                compare_op(*op),
                unparse_expr(b)
            )
        }
        Expr::And(a, b) => format!("({} && {})", unparse_expr(a), unparse_expr(b)),
        Expr::Or(a, b) => format!("({} || {})", unparse_expr(a), unparse_expr(b)),
        Expr::Not(inner) => format!("(!{})", unparse_expr(inner)),
        Expr::Call(builtin, args) => {
            let rendered: Vec<String> = args.iter().map(unparse_expr).collect();
            format!("{}({})", builtin_name(*builtin), rendered.join(", "))
        }
        Expr::Exists { pattern, negated } => {
            let keyword = if *negated { "NOT EXISTS" } else { "EXISTS" };
            format!("{keyword} {}", unparse_group(pattern))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(q: &str) {
        let ast = parse_query(q).unwrap_or_else(|e| panic!("parse {q}: {e}"));
        let text = unparse(&ast);
        let again = parse_query(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
        assert_eq!(
            ast, again,
            "round trip changed the AST for {q}\nunparsed: {text}"
        );
    }

    #[test]
    fn round_trips_basic_queries() {
        round_trip("SELECT ?x WHERE { ?x <p> ?y }");
        round_trip("SELECT DISTINCT ?x ?y { ?x <p> ?y . ?y <q> <a> }");
        round_trip("SELECT * { ?x <p> \"lit\"@en }");
        round_trip("ASK { <a> <p> <b> }");
    }

    #[test]
    fn round_trips_modifiers() {
        round_trip("SELECT ?x { ?x <p> ?y } ORDER BY ?x DESC(?y) LIMIT 5 OFFSET 2");
        round_trip("SELECT (COUNT(*) AS ?n) { ?x <p> ?y }");
        round_trip("SELECT (COUNT(DISTINCT ?x) AS ?n) { ?x <p> ?y }");
    }

    #[test]
    fn round_trips_filters() {
        round_trip("SELECT ?x { ?x <p> ?y FILTER(?x != ?y) }");
        round_trip("SELECT ?x { ?x <p> ?y FILTER(?y > 3 && BOUND(?x) || !ISLITERAL(?y)) }");
        round_trip("SELECT ?x { ?x <p> ?y FILTER(STRSTARTS(STR(?y), \"A\")) }");
        round_trip("SELECT ?x { ?x <p> ?y FILTER NOT EXISTS { ?x <q> ?y } }");
        round_trip("SELECT ?x { ?x <p> ?y FILTER EXISTS { ?x <q> ?z } }");
    }

    #[test]
    fn round_trips_typed_literals() {
        round_trip("SELECT ?x { ?x <age> 42 }");
        round_trip("SELECT ?x { ?x <name> \"O'Neil \\\"Bob\\\"\" }");
        round_trip("SELECT ?x { ?x <dt> \"2020\"^^<http://www.w3.org/2001/XMLSchema#gYear> }");
    }

    #[test]
    fn unparsed_text_is_executable() {
        use sofya_rdf::{Term, TripleStore};
        let mut store = TripleStore::new();
        store.insert_terms(&Term::iri("a"), &Term::iri("p"), &Term::iri("b"));
        let ast = parse_query("SELECT ?x { ?x <p> ?y }").unwrap();
        let rs = crate::eval::execute(&store, &unparse(&ast)).unwrap();
        assert_eq!(rs.len(), 1);
    }
}
