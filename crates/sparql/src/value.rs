//! Runtime values for filter-expression evaluation.
//!
//! The SPARQL spec's full value hierarchy (with typed-literal promotion
//! rules) is reduced here to the cases the workspace's queries need:
//! RDF terms, booleans, integers, and strings. Coercions are documented on
//! each function; unsupported combinations evaluate to an error, which a
//! `FILTER` treats as *false* (SPARQL's error-as-unbound semantics).

use crate::ast::CompareOp;
use crate::error::SparqlError;
use crate::parser::{XSD_BOOLEAN, XSD_INTEGER};
use sofya_rdf::Term;
use std::cmp::Ordering;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An RDF term (IRI, literal, or blank node).
    Term(Term),
    /// A boolean (result of comparisons and logical operators).
    Bool(bool),
    /// An integer (decoded from `xsd:integer` literals).
    Int(i64),
    /// A plain string (result of `STR`, `LANG`, …).
    Str(String),
}

impl Value {
    /// SPARQL effective boolean value.
    ///
    /// Booleans are themselves; integers are true iff non-zero; strings are
    /// true iff non-empty; literal terms use their lexical form (with
    /// boolean/integer decoding); IRIs and blank nodes are errors.
    pub fn effective_boolean(&self) -> Result<bool, SparqlError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Str(s) => Ok(!s.is_empty()),
            Value::Term(Term::Literal {
                lexical, datatype, ..
            }) => match datatype.as_deref() {
                Some(XSD_BOOLEAN) => match lexical.as_str() {
                    "true" | "1" => Ok(true),
                    "false" | "0" => Ok(false),
                    other => Err(SparqlError::eval(format!("invalid xsd:boolean '{other}'"))),
                },
                Some(XSD_INTEGER) => Ok(lexical.parse::<i64>().map(|v| v != 0).unwrap_or(false)),
                _ => Ok(!lexical.is_empty()),
            },
            Value::Term(other) => Err(SparqlError::eval(format!("no boolean value for {other}"))),
        }
    }

    /// String form used by `STR` and the string builtins.
    pub fn string_form(&self) -> Result<String, SparqlError> {
        match self {
            Value::Str(s) => Ok(s.clone()),
            Value::Int(i) => Ok(i.to_string()),
            Value::Bool(b) => Ok(b.to_string()),
            Value::Term(Term::Iri(iri)) => Ok(iri.clone()),
            Value::Term(Term::Literal { lexical, .. }) => Ok(lexical.clone()),
            Value::Term(Term::BNode(_)) => {
                Err(SparqlError::eval("STR of a blank node is undefined"))
            }
        }
    }

    /// Integer form, if this value is numeric (`xsd:integer` literal,
    /// [`Value::Int`], or a numeric string).
    pub fn integer_form(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(s) => s.parse().ok(),
            Value::Term(Term::Literal {
                lexical, datatype, ..
            }) if datatype.as_deref() == Some(XSD_INTEGER) => lexical.parse().ok(),
            _ => None,
        }
    }

    /// Applies a comparison operator.
    ///
    /// Rules, in order: if both sides are numeric, compare numerically; for
    /// `=`/`!=` on two terms, compare term identity; otherwise compare
    /// string forms lexicographically.
    pub fn compare(&self, op: CompareOp, other: &Value) -> Result<bool, SparqlError> {
        if let (Some(a), Some(b)) = (self.integer_form(), other.integer_form()) {
            return Ok(apply_ordering(op, a.cmp(&b)));
        }
        if let (Value::Term(a), Value::Term(b)) = (self, other) {
            if matches!(op, CompareOp::Eq) {
                return Ok(a == b);
            }
            if matches!(op, CompareOp::Neq) {
                return Ok(a != b);
            }
        }
        let a = self.string_form()?;
        let b = other.string_form()?;
        Ok(apply_ordering(op, a.cmp(&b)))
    }
}

fn apply_ordering(op: CompareOp, ord: Ordering) -> bool {
    match op {
        CompareOp::Eq => ord == Ordering::Equal,
        CompareOp::Neq => ord != Ordering::Equal,
        CompareOp::Lt => ord == Ordering::Less,
        CompareOp::Le => ord != Ordering::Greater,
        CompareOp::Gt => ord == Ordering::Greater,
        CompareOp::Ge => ord != Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_boolean_of_scalars() {
        assert!(Value::Bool(true).effective_boolean().unwrap());
        assert!(!Value::Bool(false).effective_boolean().unwrap());
        assert!(Value::Int(3).effective_boolean().unwrap());
        assert!(!Value::Int(0).effective_boolean().unwrap());
        assert!(Value::Str("x".into()).effective_boolean().unwrap());
        assert!(!Value::Str(String::new()).effective_boolean().unwrap());
    }

    #[test]
    fn effective_boolean_of_literals() {
        let t = Value::Term(Term::typed_literal("true", XSD_BOOLEAN));
        assert!(t.effective_boolean().unwrap());
        let f = Value::Term(Term::typed_literal("false", XSD_BOOLEAN));
        assert!(!f.effective_boolean().unwrap());
        let n = Value::Term(Term::integer(0));
        assert!(!n.effective_boolean().unwrap());
        let s = Value::Term(Term::literal("non-empty"));
        assert!(s.effective_boolean().unwrap());
    }

    #[test]
    fn effective_boolean_of_iri_is_error() {
        assert!(Value::Term(Term::iri("x")).effective_boolean().is_err());
    }

    #[test]
    fn numeric_comparison_beats_string_comparison() {
        // "10" < "9" as strings but 10 > 9 numerically.
        let a = Value::Term(Term::integer(10));
        let b = Value::Term(Term::integer(9));
        assert!(a.compare(CompareOp::Gt, &b).unwrap());
    }

    #[test]
    fn term_equality() {
        let a = Value::Term(Term::iri("x"));
        let b = Value::Term(Term::iri("x"));
        let c = Value::Term(Term::literal("x"));
        assert!(a.compare(CompareOp::Eq, &b).unwrap());
        assert!(a.compare(CompareOp::Neq, &c).unwrap());
        // IRI and literal with same text are different terms.
        assert!(!a.compare(CompareOp::Eq, &c).unwrap());
    }

    #[test]
    fn string_ordering() {
        let a = Value::Str("apple".into());
        let b = Value::Str("banana".into());
        assert!(a.compare(CompareOp::Lt, &b).unwrap());
        assert!(b.compare(CompareOp::Ge, &a).unwrap());
    }

    #[test]
    fn str_of_bnode_is_error() {
        assert!(Value::Term(Term::bnode("b")).string_form().is_err());
    }

    #[test]
    fn integer_form_decodes_typed_literal() {
        assert_eq!(Value::Term(Term::integer(-5)).integer_form(), Some(-5));
        assert_eq!(Value::Term(Term::literal("5")).integer_form(), None);
    }
}
