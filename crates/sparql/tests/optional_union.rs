//! Behavioural tests for `OPTIONAL` and `UNION` (documented subset
//! semantics; see `GroupGraphPattern`).

use sofya_rdf::{Term, TripleStore};
use sofya_sparql::{execute, execute_ask, parse_query, unparse};

fn store() -> TripleStore {
    let mut s = TripleStore::new();
    for (a, p, b) in [
        ("e:alice", "r:knows", "e:bob"),
        ("e:bob", "r:knows", "e:carol"),
        ("e:carol", "r:knows", "e:alice"),
        ("e:alice", "r:worksAt", "e:acme"),
        ("e:bob", "r:studiesAt", "e:uni"),
    ] {
        s.insert_terms(&Term::iri(a), &Term::iri(p), &Term::iri(b));
    }
    s.insert_terms(
        &Term::iri("e:alice"),
        &Term::iri("r:name"),
        &Term::literal("Alice"),
    );
    s
}

#[test]
fn union_concatenates_branch_solutions() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT ?who ?place { { ?who <r:worksAt> ?place } UNION { ?who <r:studiesAt> ?place } }",
    )
    .unwrap();
    assert_eq!(rs.len(), 2);
    let mut pairs: Vec<(String, String)> = rs
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].as_ref().unwrap().to_string(),
                r[1].as_ref().unwrap().to_string(),
            )
        })
        .collect();
    pairs.sort();
    assert_eq!(
        pairs,
        vec![
            ("<e:alice>".to_owned(), "<e:acme>".to_owned()),
            ("<e:bob>".to_owned(), "<e:uni>".to_owned()),
        ]
    );
}

#[test]
fn union_branches_join_with_the_outer_pattern() {
    let s = store();
    // Outer pattern binds ?who to people Alice knows (bob); the union
    // then asks for bob's affiliation either way.
    let rs = execute(
        &s,
        "SELECT ?who ?place { <e:alice> <r:knows> ?who . \
         { ?who <r:worksAt> ?place } UNION { ?who <r:studiesAt> ?place } }",
    )
    .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.cell(0, "who"), Some(&Term::iri("e:bob")));
    assert_eq!(rs.cell(0, "place"), Some(&Term::iri("e:uni")));
}

#[test]
fn three_way_union() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT ?x { { ?x <r:worksAt> ?a } UNION { ?x <r:studiesAt> ?a } UNION { ?x <r:name> ?a } }",
    )
    .unwrap();
    assert_eq!(rs.len(), 3);
}

#[test]
fn optional_keeps_unmatched_solutions() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT ?who ?employer { ?who <r:knows> ?other . \
         OPTIONAL { ?who <r:worksAt> ?employer } } ORDER BY ?who",
    )
    .unwrap();
    // Three knowers; only alice has an employer.
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.cell(0, "employer"), Some(&Term::iri("e:acme"))); // alice
    assert_eq!(rs.cell(1, "employer"), None); // bob
    assert_eq!(rs.cell(2, "employer"), None); // carol
}

#[test]
fn optional_multiplies_on_multiple_matches() {
    let mut s = store();
    s.insert_terms(
        &Term::iri("e:alice"),
        &Term::iri("r:worksAt"),
        &Term::iri("e:globex"),
    );
    let rs = execute(
        &s,
        "SELECT ?employer { <e:alice> <r:knows> ?x . OPTIONAL { <e:alice> <r:worksAt> ?employer } }",
    )
    .unwrap();
    assert_eq!(rs.len(), 2); // one base solution × two optional matches
}

#[test]
fn nested_group_is_inner_join() {
    let s = store();
    let rs = execute(&s, "SELECT ?x { ?x <r:knows> ?y . { ?x <r:worksAt> ?w } }").unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.cell(0, "x"), Some(&Term::iri("e:alice")));
}

#[test]
fn filter_on_optional_var_runs_post_join() {
    let s = store();
    // BOUND over an optional variable: keeps only solutions where the
    // optional matched.
    let rs = execute(
        &s,
        "SELECT ?who { ?who <r:knows> ?other . OPTIONAL { ?who <r:worksAt> ?w } FILTER(BOUND(?w)) }",
    )
    .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.cell(0, "who"), Some(&Term::iri("e:alice")));

    let rs = execute(
        &s,
        "SELECT ?who { ?who <r:knows> ?other . OPTIONAL { ?who <r:worksAt> ?w } FILTER(!BOUND(?w)) }",
    )
    .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn ask_sees_through_unions() {
    let s = store();
    assert!(execute_ask(
        &s,
        "ASK { { <e:alice> <r:worksAt> ?x } UNION { <e:alice> <r:studiesAt> ?x } }"
    )
    .unwrap());
    assert!(!execute_ask(
        &s,
        "ASK { { <e:carol> <r:worksAt> ?x } UNION { <e:carol> <r:studiesAt> ?x } }"
    )
    .unwrap());
}

#[test]
fn count_over_union() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT (COUNT(*) AS ?n) { { ?x <r:worksAt> ?a } UNION { ?x <r:studiesAt> ?a } }",
    )
    .unwrap();
    assert_eq!(rs.single_integer(), Some(2));
}

#[test]
fn star_projection_includes_optional_and_union_vars() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT * { ?who <r:knows> ?other OPTIONAL { ?who <r:worksAt> ?w } }",
    )
    .unwrap();
    assert!(rs.vars().contains(&"w".to_owned()));
}

#[test]
fn distinct_applies_after_union() {
    let mut s = store();
    // Make bob both work and study at e:uni so the union duplicates.
    s.insert_terms(
        &Term::iri("e:bob"),
        &Term::iri("r:worksAt"),
        &Term::iri("e:uni"),
    );
    let rs = execute(
        &s,
        "SELECT DISTINCT ?x ?a { { ?x <r:worksAt> ?a } UNION { ?x <r:studiesAt> ?a } }",
    )
    .unwrap();
    let plain = execute(
        &s,
        "SELECT ?x ?a { { ?x <r:worksAt> ?a } UNION { ?x <r:studiesAt> ?a } }",
    )
    .unwrap();
    assert_eq!(plain.len(), 3);
    assert_eq!(rs.len(), 2);
}

#[test]
fn unparse_round_trips_optional_and_union() {
    for q in [
        "SELECT ?x { { ?x <p> ?y } UNION { ?x <q> ?y } }",
        "SELECT ?x { ?x <p> ?y OPTIONAL { ?x <q> ?z } }",
        "SELECT ?x { ?x <p> ?y . { ?x <a> ?b } UNION { ?x <c> ?d } UNION { ?x <e> ?f } OPTIONAL { ?x <g> ?h FILTER(?h != ?x) } }",
    ] {
        let ast = parse_query(q).unwrap();
        let text = unparse(&ast);
        let again = parse_query(&text).unwrap();
        assert_eq!(ast, again, "round trip failed for {q}: {text}");
    }
}

#[test]
fn optional_inside_union_branch() {
    let s = store();
    let rs = execute(
        &s,
        "SELECT ?x ?n { { ?x <r:worksAt> ?a OPTIONAL { ?x <r:name> ?n } } UNION { ?x <r:studiesAt> ?a } }",
    )
    .unwrap();
    assert_eq!(rs.len(), 2);
    let alice_row = rs
        .rows()
        .iter()
        .find(|r| r[0] == Some(Term::iri("e:alice")))
        .expect("alice present");
    assert_eq!(alice_row[1], Some(Term::literal("Alice")));
}
