//! Differential property suite for the selectivity-driven planner: for
//! random groups (BGP + FILTER / OPTIONAL / UNION), the reordering planner
//! must produce the *identical multiset* of solutions as written-order
//! evaluation (`PlanOptions::preserve_order`), with or without
//! precomputed store statistics steering the ordering.

use proptest::prelude::*;
use sofya_rdf::{StoreStats, Term, TripleStore};
use sofya_sparql::{execute_with_options, PlanOptions, QueryOutcome, ResultSet};

const ENTITIES: u32 = 7;
const PREDICATES: u32 = 4;
const VARS: &[&str] = &["a", "b", "c", "d"];

#[derive(Debug, Clone, Copy)]
enum Node {
    Var(usize),
    Entity(u32),
    Predicate(u32),
}

fn node_text(n: Node) -> String {
    match n {
        Node::Var(i) => format!("?{}", VARS[i]),
        Node::Entity(e) => format!("<e{e}>"),
        Node::Predicate(p) => format!("<p{p}>"),
    }
}

type TripleSpec = (Node, Node, Node);

#[derive(Debug, Clone)]
struct GroupSpec {
    base: Vec<TripleSpec>,
    union: Option<(TripleSpec, TripleSpec)>,
    optional: Option<TripleSpec>,
    filter: Option<(usize, usize, bool)>,
}

fn query_text(spec: &GroupSpec) -> String {
    let triple =
        |&(s, p, o): &TripleSpec| format!("{} {} {}", node_text(s), node_text(p), node_text(o));
    let mut body = spec.base.iter().map(triple).collect::<Vec<_>>().join(" . ");
    if let Some((b1, b2)) = &spec.union {
        if !body.is_empty() {
            body.push_str(" . ");
        }
        body.push_str(&format!("{{ {} }} UNION {{ {} }}", triple(b1), triple(b2)));
    }
    if let Some(opt) = &spec.optional {
        body.push_str(&format!(" OPTIONAL {{ {} }}", triple(opt)));
    }
    if let Some((lhs, rhs, neg)) = &spec.filter {
        let op = if *neg { "!=" } else { "=" };
        body.push_str(&format!(" FILTER(?{} {op} ?{})", VARS[*lhs], VARS[*rhs]));
    }
    format!("SELECT ?a ?b ?c ?d WHERE {{ {body} }}")
}

fn build_store(facts: &[(u32, u32, u32)]) -> TripleStore {
    let mut store = TripleStore::new();
    for &(s, p, o) in facts {
        store.insert_terms(
            &Term::iri(format!("e{s}")),
            &Term::iri(format!("p{p}")),
            &Term::iri(format!("e{o}")),
        );
    }
    store
}

/// Rows as a sorted multiset of rendered cells (duplicates preserved).
fn multiset(rs: &ResultSet) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = rs
        .rows()
        .iter()
        .map(|row| {
            row.iter()
                .map(|c| c.as_ref().map(|t| t.to_string()).unwrap_or_default())
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn run(store: &TripleStore, query: &str, opts: PlanOptions<'_>) -> Vec<Vec<String>> {
    match execute_with_options(store, query, opts).unwrap() {
        QueryOutcome::Solutions(rs) => multiset(&rs),
        QueryOutcome::Boolean(_) => unreachable!("SELECT query"),
    }
}

fn subject_or_object() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..ENTITIES).prop_map(Node::Entity),
    ]
}

fn predicate() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..PREDICATES).prop_map(Node::Predicate),
    ]
}

fn triple_spec() -> impl Strategy<Value = TripleSpec> {
    (subject_or_object(), predicate(), subject_or_object())
}

fn maybe<S>(strategy: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone,
{
    prop_oneof![Just(None), strategy.prop_map(Some)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reordered vs written-order evaluation, and statistics-steered vs
    /// count-only ordering: all three run the same query and must agree
    /// on the solution multiset.
    #[test]
    fn reordering_preserves_solution_multiset(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..30),
        base in proptest::collection::vec(triple_spec(), 1..5),
        union in maybe((triple_spec(), triple_spec())),
        optional in maybe(triple_spec()),
        filter in maybe((0..VARS.len(), 0..VARS.len(), (0u32..2).prop_map(|b| b == 1))),
    ) {
        let spec = GroupSpec { base, union, optional, filter };
        let store = build_store(&facts);
        let query = query_text(&spec);

        let written = run(&store, &query, PlanOptions {
            preserve_order: true,
            ..PlanOptions::default()
        });
        let reordered = run(&store, &query, PlanOptions::default());
        prop_assert_eq!(&written, &reordered, "count-only planner diverged: {}", &query);

        let stats = StoreStats::compute(&store);
        let with_stats = run(&store, &query, PlanOptions {
            stats: Some(&stats),
            ..PlanOptions::default()
        });
        prop_assert_eq!(&written, &with_stats, "stats planner diverged: {}", &query);
    }
}
