//! Property test: the engine's answer to a random BGP join must equal a
//! naive nested-loop evaluation done by hand, whatever plan the optimiser
//! picks.

use proptest::prelude::*;
use sofya_rdf::{Term, TripleStore};
use sofya_sparql::execute;
use std::collections::BTreeSet;

const ENTITIES: u32 = 8;
const PREDICATES: u32 = 3;
const VARS: &[&str] = &["a", "b", "c"];

/// A random triple-pattern position: variable index or constant id.
#[derive(Debug, Clone, Copy)]
enum Node {
    Var(usize),
    Entity(u32),
    Predicate(u32),
}

fn node_text(n: Node) -> String {
    match n {
        Node::Var(i) => format!("?{}", VARS[i]),
        Node::Entity(e) => format!("<e{e}>"),
        Node::Predicate(p) => format!("<p{p}>"),
    }
}

fn subject_or_object() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..ENTITIES).prop_map(Node::Entity),
    ]
}

fn predicate() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..PREDICATES).prop_map(Node::Predicate),
    ]
}

type PatternSpec = Vec<(Node, Node, Node)>;

fn build_store(facts: &[(u32, u32, u32)]) -> TripleStore {
    let mut store = TripleStore::new();
    for &(s, p, o) in facts {
        store.insert_terms(
            &Term::iri(format!("e{s}")),
            &Term::iri(format!("p{p}")),
            &Term::iri(format!("e{o}")),
        );
    }
    store
}

/// Brute force: enumerate all bindings of the three variables over the
/// term universe and keep those satisfying every pattern.
fn brute_force(store: &TripleStore, patterns: &PatternSpec) -> BTreeSet<Vec<String>> {
    // Universe: every term that occurs anywhere (entities and predicates).
    let mut universe: Vec<String> = Vec::new();
    for e in 0..ENTITIES {
        universe.push(format!("e{e}"));
    }
    for p in 0..PREDICATES {
        universe.push(format!("p{p}"));
    }
    let mut out = BTreeSet::new();
    let n = universe.len();
    for ia in 0..n {
        for ib in 0..n {
            for ic in 0..n {
                let assignment = [&universe[ia], &universe[ib], &universe[ic]];
                let resolve = |node: Node| -> String {
                    match node {
                        Node::Var(v) => assignment[v].clone(),
                        Node::Entity(e) => format!("e{e}"),
                        Node::Predicate(p) => format!("p{p}"),
                    }
                };
                let ok = patterns.iter().all(|&(s, p, o)| {
                    let (s, p, o) = (resolve(s), resolve(p), resolve(o));
                    match (
                        store.dict().lookup_iri(&s),
                        store.dict().lookup_iri(&p),
                        store.dict().lookup_iri(&o),
                    ) {
                        (Some(s), Some(p), Some(o)) => store.contains(s, p, o),
                        _ => false,
                    }
                });
                if ok {
                    out.insert(assignment.iter().map(|s| s.to_string()).collect());
                }
            }
        }
    }
    out
}

/// Which variables actually appear in the pattern (unused ones roam the
/// whole universe in the brute force, so we project them away).
fn used_vars(patterns: &PatternSpec) -> [bool; 3] {
    let mut used = [false; 3];
    for &(s, p, o) in patterns {
        for n in [s, p, o] {
            if let Node::Var(v) = n {
                used[v] = true;
            }
        }
    }
    used
}

// --------------------------------------------------------------------------
// Beyond plain BGPs: FILTER / OPTIONAL / UNION against a naive oracle that
// implements the documented subset semantics (see `GroupGraphPattern`):
// base join first, then each UNION block joins every solution with each
// branch, then OPTIONALs left-join, then filters on the final rows.
// --------------------------------------------------------------------------

/// A solution mapping for the three query variables, by index.
type OBinding = [Option<String>; 3];

#[derive(Debug, Clone, Copy)]
enum FilterRhs {
    Var(usize),
    Entity(u32),
}

#[derive(Debug, Clone, Copy)]
struct FilterSpec {
    lhs: usize,
    rhs: FilterRhs,
    negated: bool,
}

type TripleSpec = (Node, Node, Node);

#[derive(Debug, Clone)]
struct GroupSpec {
    base: Vec<TripleSpec>,
    union: Option<(TripleSpec, TripleSpec)>,
    optional: Option<TripleSpec>,
    filter: Option<FilterSpec>,
}

fn group_query_text(spec: &GroupSpec) -> String {
    let triple =
        |&(s, p, o): &TripleSpec| format!("{} {} {}", node_text(s), node_text(p), node_text(o));
    let mut body = spec.base.iter().map(triple).collect::<Vec<_>>().join(" . ");
    if let Some((b1, b2)) = &spec.union {
        if !body.is_empty() {
            body.push_str(" . ");
        }
        body.push_str(&format!("{{ {} }} UNION {{ {} }}", triple(b1), triple(b2)));
    }
    if let Some(opt) = &spec.optional {
        body.push_str(&format!(" OPTIONAL {{ {} }}", triple(opt)));
    }
    if let Some(f) = &spec.filter {
        let rhs = match f.rhs {
            FilterRhs::Var(v) => format!("?{}", VARS[v]),
            FilterRhs::Entity(e) => format!("<e{e}>"),
        };
        let op = if f.negated { "!=" } else { "=" };
        body.push_str(&format!(" FILTER(?{} {op} {rhs})", VARS[f.lhs]));
    }
    format!("SELECT ?a ?b ?c WHERE {{ {body} }}")
}

/// Extends `binding` so `node` matches `value`; `false` on conflict.
fn try_bind(binding: &mut OBinding, node: Node, value: &str) -> bool {
    match node {
        Node::Var(i) => match &binding[i] {
            Some(existing) => existing == value,
            None => {
                binding[i] = Some(value.to_owned());
                true
            }
        },
        Node::Entity(e) => value == format!("e{e}"),
        Node::Predicate(p) => value == format!("p{p}"),
    }
}

/// Naive nested-loop join of `patterns` over the raw fact list, starting
/// from `seed` (correlated semantics: seeds carry outer bindings).
fn oracle_bgp(
    facts: &[(u32, u32, u32)],
    patterns: &[TripleSpec],
    seed: &OBinding,
) -> Vec<OBinding> {
    let mut sols = vec![seed.clone()];
    for &(ps, pp, po) in patterns {
        let mut next = Vec::new();
        for sol in &sols {
            for &(fs, fp, fo) in facts {
                let mut cand = sol.clone();
                if try_bind(&mut cand, ps, &format!("e{fs}"))
                    && try_bind(&mut cand, pp, &format!("p{fp}"))
                    && try_bind(&mut cand, po, &format!("e{fo}"))
                {
                    next.push(cand);
                }
            }
        }
        sols = next;
    }
    sols
}

/// Full-group oracle: base, then UNION (join-concat), then OPTIONAL
/// (left join), then filters on the final rows. A filter touching an
/// unbound variable is an evaluation error, which SPARQL (and the engine)
/// treats as `false`.
fn oracle_eval(facts: &[(u32, u32, u32)], spec: &GroupSpec) -> BTreeSet<Vec<String>> {
    let mut sols = oracle_bgp(facts, &spec.base, &[None, None, None]);
    if let Some((b1, b2)) = &spec.union {
        let mut next = Vec::new();
        for sol in &sols {
            next.extend(oracle_bgp(facts, std::slice::from_ref(b1), sol));
            next.extend(oracle_bgp(facts, std::slice::from_ref(b2), sol));
        }
        sols = next;
    }
    if let Some(opt) = &spec.optional {
        let mut next = Vec::new();
        for sol in &sols {
            let extended = oracle_bgp(facts, std::slice::from_ref(opt), sol);
            if extended.is_empty() {
                next.push(sol.clone());
            } else {
                next.extend(extended);
            }
        }
        sols = next;
    }
    if let Some(f) = &spec.filter {
        sols.retain(|sol| {
            let rhs = match f.rhs {
                FilterRhs::Var(v) => sol[v].clone(),
                FilterRhs::Entity(e) => Some(format!("e{e}")),
            };
            match (&sol[f.lhs], rhs) {
                (Some(l), Some(r)) => {
                    if f.negated {
                        *l != r
                    } else {
                        *l == r
                    }
                }
                _ => false,
            }
        });
    }
    sols.into_iter()
        .map(|sol| sol.iter().map(|v| v.clone().unwrap_or_default()).collect())
        .collect()
}

fn engine_rows(store: &TripleStore, query: &str) -> BTreeSet<Vec<String>> {
    let rs = execute(store, query).unwrap();
    let mut out = BTreeSet::new();
    for row in rs.rows() {
        out.insert(
            (0..3)
                .map(|i| {
                    row[i]
                        .as_ref()
                        .map(|t| t.as_iri().unwrap().to_owned())
                        .unwrap_or_default()
                })
                .collect(),
        );
    }
    out
}

fn triple_spec() -> impl Strategy<Value = TripleSpec> {
    (subject_or_object(), predicate(), subject_or_object())
}

fn maybe<S>(strategy: S) -> impl Strategy<Value = Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone,
{
    prop_oneof![Just(None), strategy.prop_map(Some)]
}

fn filter_spec() -> impl Strategy<Value = FilterSpec> {
    (
        0..VARS.len(),
        prop_oneof![
            (0..VARS.len()).prop_map(FilterRhs::Var),
            (0..ENTITIES).prop_map(FilterRhs::Entity),
        ],
        (0u32..2).prop_map(|b| b == 1),
    )
        .prop_map(|(lhs, rhs, negated)| FilterSpec { lhs, rhs, negated })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_brute_force(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..25),
        patterns in proptest::collection::vec(
            (subject_or_object(), predicate(), subject_or_object()), 1..4),
    ) {
        let store = build_store(&facts);
        let query = format!(
            "SELECT ?a ?b ?c WHERE {{ {} }}",
            patterns
                .iter()
                .map(|&(s, p, o)| format!("{} {} {}", node_text(s), node_text(p), node_text(o)))
                .collect::<Vec<_>>()
                .join(" . ")
        );
        let rs = execute(&store, &query).unwrap();
        let used = used_vars(&patterns);

        // Project engine rows onto used variables.
        let mut engine: BTreeSet<Vec<String>> = BTreeSet::new();
        for row in rs.rows() {
            let projected: Vec<String> = (0..3)
                .map(|i| {
                    if used[i] {
                        row[i].as_ref().map(|t| t.as_iri().unwrap().to_owned()).unwrap_or_default()
                    } else {
                        String::new()
                    }
                })
                .collect();
            engine.insert(projected);
        }

        // Project brute-force rows the same way.
        let mut brute: BTreeSet<Vec<String>> = BTreeSet::new();
        for row in brute_force(&store, &patterns) {
            let projected: Vec<String> = (0..3)
                .map(|i| if used[i] { row[i].clone() } else { String::new() })
                .collect();
            brute.insert(projected);
        }

        prop_assert_eq!(engine, brute, "query: {}", query);
    }

    /// FILTER over a random BGP: `?x = ?y`, `?x != ?y`, and comparisons
    /// against entity constants, including filters over variables the
    /// patterns never bind (which must empty the result, not error).
    #[test]
    fn engine_matches_oracle_with_filter(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..20),
        base in proptest::collection::vec(triple_spec(), 1..4),
        filter in filter_spec(),
    ) {
        let spec = GroupSpec { base, union: None, optional: None, filter: Some(filter) };
        let store = build_store(&facts);
        let query = group_query_text(&spec);
        prop_assert_eq!(
            engine_rows(&store, &query),
            oracle_eval(&facts, &spec),
            "query: {}",
            query
        );
    }

    /// UNION and OPTIONAL around a random base pattern: the planner's
    /// greedy join ordering only sees the base BGP, so this checks that
    /// group composition (join-concat unions, left-join optionals) is
    /// preserved whatever order the base join runs in.
    #[test]
    fn engine_matches_oracle_on_union_and_optional(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..20),
        base in proptest::collection::vec(triple_spec(), 0..3),
        union in maybe((triple_spec(), triple_spec())),
        optional in maybe(triple_spec()),
    ) {
        let spec = GroupSpec { base, union, optional, filter: None };
        let store = build_store(&facts);
        let query = group_query_text(&spec);
        prop_assert_eq!(
            engine_rows(&store, &query),
            oracle_eval(&facts, &spec),
            "query: {}",
            query
        );
    }

    /// The full mix: base + UNION + OPTIONAL + FILTER in one group, so
    /// filter scheduling (during-join vs post-group) is exercised against
    /// apply-at-the-end oracle semantics, which the documented subset
    /// guarantees to be equivalent.
    #[test]
    fn engine_matches_oracle_on_full_groups(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..16),
        base in proptest::collection::vec(triple_spec(), 0..3),
        union in maybe((triple_spec(), triple_spec())),
        optional in maybe(triple_spec()),
        filter in maybe(filter_spec()),
    ) {
        let spec = GroupSpec { base, union, optional, filter };
        let store = build_store(&facts);
        let query = group_query_text(&spec);
        prop_assert_eq!(
            engine_rows(&store, &query),
            oracle_eval(&facts, &spec),
            "query: {}",
            query
        );
    }
}
