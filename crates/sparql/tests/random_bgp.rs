//! Property test: the engine's answer to a random BGP join must equal a
//! naive nested-loop evaluation done by hand, whatever plan the optimiser
//! picks.

use proptest::prelude::*;
use sofya_rdf::{Term, TripleStore};
use sofya_sparql::execute;
use std::collections::BTreeSet;

const ENTITIES: u32 = 8;
const PREDICATES: u32 = 3;
const VARS: &[&str] = &["a", "b", "c"];

/// A random triple-pattern position: variable index or constant id.
#[derive(Debug, Clone, Copy)]
enum Node {
    Var(usize),
    Entity(u32),
    Predicate(u32),
}

fn node_text(n: Node) -> String {
    match n {
        Node::Var(i) => format!("?{}", VARS[i]),
        Node::Entity(e) => format!("<e{e}>"),
        Node::Predicate(p) => format!("<p{p}>"),
    }
}

fn subject_or_object() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..ENTITIES).prop_map(Node::Entity),
    ]
}

fn predicate() -> impl Strategy<Value = Node> {
    prop_oneof![
        (0..VARS.len()).prop_map(Node::Var),
        (0..PREDICATES).prop_map(Node::Predicate),
    ]
}

type PatternSpec = Vec<(Node, Node, Node)>;

fn build_store(facts: &[(u32, u32, u32)]) -> TripleStore {
    let mut store = TripleStore::new();
    for &(s, p, o) in facts {
        store.insert_terms(
            &Term::iri(format!("e{s}")),
            &Term::iri(format!("p{p}")),
            &Term::iri(format!("e{o}")),
        );
    }
    store
}

/// Brute force: enumerate all bindings of the three variables over the
/// term universe and keep those satisfying every pattern.
fn brute_force(store: &TripleStore, patterns: &PatternSpec) -> BTreeSet<Vec<String>> {
    // Universe: every term that occurs anywhere (entities and predicates).
    let mut universe: Vec<String> = Vec::new();
    for e in 0..ENTITIES {
        universe.push(format!("e{e}"));
    }
    for p in 0..PREDICATES {
        universe.push(format!("p{p}"));
    }
    let mut out = BTreeSet::new();
    let n = universe.len();
    for ia in 0..n {
        for ib in 0..n {
            for ic in 0..n {
                let assignment = [&universe[ia], &universe[ib], &universe[ic]];
                let resolve = |node: Node| -> String {
                    match node {
                        Node::Var(v) => assignment[v].clone(),
                        Node::Entity(e) => format!("e{e}"),
                        Node::Predicate(p) => format!("p{p}"),
                    }
                };
                let ok = patterns.iter().all(|&(s, p, o)| {
                    let (s, p, o) = (resolve(s), resolve(p), resolve(o));
                    match (
                        store.dict().lookup_iri(&s),
                        store.dict().lookup_iri(&p),
                        store.dict().lookup_iri(&o),
                    ) {
                        (Some(s), Some(p), Some(o)) => store.contains(s, p, o),
                        _ => false,
                    }
                });
                if ok {
                    out.insert(assignment.iter().map(|s| s.to_string()).collect());
                }
            }
        }
    }
    out
}

/// Which variables actually appear in the pattern (unused ones roam the
/// whole universe in the brute force, so we project them away).
fn used_vars(patterns: &PatternSpec) -> [bool; 3] {
    let mut used = [false; 3];
    for &(s, p, o) in patterns {
        for n in [s, p, o] {
            if let Node::Var(v) = n {
                used[v] = true;
            }
        }
    }
    used
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_brute_force(
        facts in proptest::collection::vec(
            (0..ENTITIES, 0..PREDICATES, 0..ENTITIES), 1..25),
        patterns in proptest::collection::vec(
            (subject_or_object(), predicate(), subject_or_object()), 1..4),
    ) {
        let store = build_store(&facts);
        let query = format!(
            "SELECT ?a ?b ?c WHERE {{ {} }}",
            patterns
                .iter()
                .map(|&(s, p, o)| format!("{} {} {}", node_text(s), node_text(p), node_text(o)))
                .collect::<Vec<_>>()
                .join(" . ")
        );
        let rs = execute(&store, &query).unwrap();
        let used = used_vars(&patterns);

        // Project engine rows onto used variables.
        let mut engine: BTreeSet<Vec<String>> = BTreeSet::new();
        for row in rs.rows() {
            let projected: Vec<String> = (0..3)
                .map(|i| {
                    if used[i] {
                        row[i].as_ref().map(|t| t.as_iri().unwrap().to_owned()).unwrap_or_default()
                    } else {
                        String::new()
                    }
                })
                .collect();
            engine.insert(projected);
        }

        // Project brute-force rows the same way.
        let mut brute: BTreeSet<Vec<String>> = BTreeSet::new();
        for row in brute_force(&store, &patterns) {
            let projected: Vec<String> = (0..3)
                .map(|i| if used[i] { row[i].clone() } else { String::new() })
                .collect();
            brute.insert(projected);
        }

        prop_assert_eq!(engine, brute, "query: {}", query);
    }
}
