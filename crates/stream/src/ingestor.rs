//! Micro-batched triple ingestion in front of a [`SnapshotStore`].
//!
//! The streaming front door buffers offered triples and publishes them
//! in batches, because a publish is the expensive step (buffer merge,
//! snapshot swap, delta resolution) while an insert is cheap. Three
//! triggers bound how long a triple can sit invisible in the buffer:
//!
//! * **count** — `publish_count` buffered triples force a publish
//!   (classic micro-batching);
//! * **time** — a buffer whose *oldest* triple is older than
//!   `publish_interval` publishes on the next [`StreamIngestor::offer`]
//!   or [`StreamIngestor::tick`];
//! * **capacity** — the buffer never exceeds `max_buffered`: reaching
//!   the bound publishes immediately instead of growing without limit.
//!
//! In **sliding-window** mode every published triple also carries its
//! arrival time; each publish first expires triples older than the
//! window by removing them from the store, so the published state
//! converges to "what arrived in the last `window`" — and expiry flows
//! through the same [`PublishDelta`] machinery as any other removal, so
//! cached alignments over expired evidence go dirty like any other
//! staleness.

use crate::tracker::{FreshnessTracker, KbSide};
use parking_lot::Mutex;
use sofya_endpoint::{
    Clock, ConcurrentEndpoint, DeltaLog, EndpointError, FreshnessGauge, PublishDelta,
    SnapshotStore, WallClock,
};
use sofya_net::IngestSink;
use sofya_rdf::Term;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Publish-trigger and windowing knobs for a [`StreamIngestor`].
#[derive(Debug, Clone)]
pub struct IngestorConfig {
    /// Hard bound on the staging buffer; reaching it publishes
    /// immediately. Values below 1 behave as 1.
    pub max_buffered: usize,
    /// Publish once this many triples are buffered. Values below 1
    /// behave as 1 (publish on every offer).
    pub publish_count: usize,
    /// Publish once the oldest buffered triple is this old, checked on
    /// each [`StreamIngestor::offer`] / [`StreamIngestor::tick`].
    /// `None` disables the time trigger.
    pub publish_interval: Option<Duration>,
    /// Sliding-window mode: on every publish, triples that arrived more
    /// than this long ago are removed from the store first. `None`
    /// keeps everything forever (append-only ingestion).
    pub window: Option<Duration>,
}

impl Default for IngestorConfig {
    fn default() -> Self {
        Self {
            max_buffered: 4096,
            publish_count: 256,
            publish_interval: Some(Duration::from_millis(100)),
            window: None,
        }
    }
}

/// The streaming writer: owns the [`SnapshotStore`] and applies the
/// micro-batching policy. Single-owner like the store itself; wrap in a
/// [`SharedIngestor`] to serve concurrent producers (e.g. `POST /ingest`).
pub struct StreamIngestor {
    store: SnapshotStore,
    config: IngestorConfig,
    buffer: Vec<(Term, Term, Term)>,
    /// Time source for arrival stamps. Production uses the wall clock;
    /// tests inject a [`ManualClock`](sofya_endpoint::ManualClock) so
    /// the time trigger and window expiry are fully deterministic.
    clock: Arc<dyn Clock>,
    /// Arrival stamp of the oldest buffered triple (the time trigger),
    /// measured on the injected clock.
    oldest_buffered: Option<Duration>,
    /// Arrival-ordered published triples awaiting expiry (window mode
    /// only; empty otherwise), stamped on the injected clock.
    live: VecDeque<(Duration, (Term, Term, Term))>,
}

impl StreamIngestor {
    /// Wraps an already-published snapshot store, stamping arrivals on
    /// the wall clock.
    pub fn new(store: SnapshotStore, config: IngestorConfig) -> Self {
        Self::with_clock(store, config, Arc::new(WallClock::new()))
    }

    /// Wraps an already-published snapshot store with an injected time
    /// source, making the time trigger and window expiry deterministic
    /// under a [`ManualClock`](sofya_endpoint::ManualClock).
    pub fn with_clock(store: SnapshotStore, config: IngestorConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            store,
            config,
            buffer: Vec::new(),
            clock,
            oldest_buffered: None,
            live: VecDeque::new(),
        }
    }

    /// Stages one triple; publishes and returns the delta if a trigger
    /// fired, `None` if the triple only joined the buffer.
    pub fn offer(&mut self, s: Term, p: Term, o: Term) -> Option<Arc<PublishDelta>> {
        if self.buffer.is_empty() {
            self.oldest_buffered = Some(self.clock.now());
        }
        self.buffer.push((s, p, o));
        self.maybe_publish()
    }

    /// Stages a batch of triples as one unit; publishes at most once, at
    /// the end, if any trigger fired.
    pub fn offer_batch(
        &mut self,
        triples: impl IntoIterator<Item = (Term, Term, Term)>,
    ) -> Option<Arc<PublishDelta>> {
        let mut offered = false;
        for (s, p, o) in triples {
            if self.buffer.is_empty() {
                self.oldest_buffered = Some(self.clock.now());
            }
            self.buffer.push((s, p, o));
            offered = true;
        }
        if offered {
            self.maybe_publish()
        } else {
            None
        }
    }

    /// Time-driven check with nothing new to offer: publishes if the
    /// buffer's age trigger fired, or if window mode has expirable
    /// triples. Call periodically from the owner's housekeeping loop.
    pub fn tick(&mut self) -> Option<Arc<PublishDelta>> {
        let now = self.clock.now();
        let time_due = match (self.config.publish_interval, self.oldest_buffered) {
            (Some(interval), Some(oldest)) => now.saturating_sub(oldest) >= interval,
            _ => false,
        };
        let expiry_due = match self.config.window {
            Some(window) => self
                .live
                .front()
                .is_some_and(|(at, _)| now.saturating_sub(*at) >= window),
            None => false,
        };
        if time_due || expiry_due {
            Some(self.publish_now())
        } else {
            None
        }
    }

    fn maybe_publish(&mut self) -> Option<Arc<PublishDelta>> {
        let count_due = self.buffer.len() >= self.config.publish_count.max(1);
        let cap_due = self.buffer.len() >= self.config.max_buffered.max(1);
        let time_due = match (self.config.publish_interval, self.oldest_buffered) {
            (Some(interval), Some(oldest)) => self.clock.now().saturating_sub(oldest) >= interval,
            _ => false,
        };
        if count_due || cap_due || time_due {
            Some(self.publish_now())
        } else {
            None
        }
    }

    /// Flushes the buffer into the store, expires the window, and
    /// publishes. With nothing buffered and nothing expired this is the
    /// store's no-op publish fast path (same epoch, no delta logged).
    pub fn publish_now(&mut self) -> Arc<PublishDelta> {
        let now = self.clock.now();
        let windowed = self.config.window.is_some();
        {
            let store = self.store.store_mut();
            // Expire before flushing, so a triple always survives the
            // publish that makes it visible (even with a zero window).
            if let Some(window) = self.config.window {
                while let Some((at, triple)) = self.live.front() {
                    if now.saturating_sub(*at) < window {
                        break;
                    }
                    let (s, p, o) = triple.clone();
                    self.live.pop_front();
                    let dict = store.dict();
                    if let (Some(s), Some(p), Some(o)) =
                        (dict.lookup(&s), dict.lookup(&p), dict.lookup(&o))
                    {
                        store.remove(s, p, o);
                    }
                }
            }
            for (s, p, o) in self.buffer.drain(..) {
                if store.insert_terms(&s, &p, &o) && windowed {
                    self.live.push_back((now, (s, p, o)));
                }
            }
        }
        self.oldest_buffered = None;
        self.store.publish()
    }

    /// Triples staged but not yet published.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Published triples currently inside the sliding window (0 when
    /// windowing is off).
    pub fn live_in_window(&self) -> usize {
        self.live.len()
    }

    /// Epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.store.current().version()
    }

    /// A concurrent reader over the published snapshots (see
    /// [`SnapshotStore::reader`]).
    pub fn reader(&self, name: impl Into<String>) -> ConcurrentEndpoint {
        self.store.reader(name)
    }

    /// The shared delta ring (see [`SnapshotStore::delta_log`]).
    pub fn delta_log(&self) -> Arc<DeltaLog> {
        self.store.delta_log()
    }

    /// The shared freshness gauges (see [`SnapshotStore::freshness`]).
    pub fn freshness(&self) -> Arc<FreshnessGauge> {
        self.store.freshness()
    }

    /// A [`FreshnessTracker`] subscribed at the current epoch, treating
    /// this store as the given side of an alignment session.
    pub fn tracker(&self, side: KbSide) -> FreshnessTracker {
        FreshnessTracker::new(&self.store, side)
    }

    /// The underlying snapshot store.
    pub fn snapshot_store(&self) -> &SnapshotStore {
        &self.store
    }
}

/// A thread-safe [`StreamIngestor`] wrapper implementing the network
/// tier's [`IngestSink`], so `POST /ingest` bodies land here (one sink
/// call per HTTP request, executed as one scheduler job).
pub struct SharedIngestor {
    inner: Mutex<StreamIngestor>,
}

impl SharedIngestor {
    /// Wraps an ingestor for concurrent producers.
    pub fn new(ingestor: StreamIngestor) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(ingestor),
        })
    }

    /// Runs `f` with exclusive access to the ingestor (publish-now,
    /// tick, reader creation, …).
    pub fn with<R>(&self, f: impl FnOnce(&mut StreamIngestor) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

impl IngestSink for SharedIngestor {
    fn ingest(&self, triples: Vec<(Term, Term, Term)>) -> Result<u64, EndpointError> {
        let mut ingestor = self.inner.lock();
        match ingestor.offer_batch(triples) {
            Some(delta) => Ok(delta.epoch),
            // Batch is buffered, not yet visible: report the epoch the
            // caller currently reads at; a later publish covers it.
            None => Ok(ingestor.current_epoch()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofya_endpoint::EndpointExt;
    use sofya_rdf::TripleStore;

    fn triple(i: usize) -> (Term, Term, Term) {
        (
            Term::iri(format!("e:s{i}")),
            Term::iri("r:p"),
            Term::iri(format!("e:o{i}")),
        )
    }

    fn ingestor(config: IngestorConfig) -> StreamIngestor {
        StreamIngestor::new(SnapshotStore::new(TripleStore::new()), config)
    }

    #[test]
    fn count_trigger_publishes_in_batches() {
        let mut ing = ingestor(IngestorConfig {
            max_buffered: 64,
            publish_count: 3,
            publish_interval: None,
            window: None,
        });
        let reader = ing.reader("kb");
        let (s, p, o) = triple(0);
        assert!(ing.offer(s, p, o).is_none());
        let (s, p, o) = triple(1);
        assert!(ing.offer(s, p, o).is_none());
        assert_eq!(ing.buffered(), 2);
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 0);

        let (s, p, o) = triple(2);
        let delta = ing.offer(s, p, o).expect("third offer fires the trigger");
        assert!(!delta.is_noop());
        assert_eq!(ing.buffered(), 0);
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 3);
        assert_eq!(delta.predicates.len(), 1);
        assert_eq!(delta.predicates[0].inserts, 3);
    }

    #[test]
    fn capacity_bound_forces_a_publish() {
        let mut ing = ingestor(IngestorConfig {
            max_buffered: 2,
            publish_count: 100,
            publish_interval: None,
            window: None,
        });
        let (s, p, o) = triple(0);
        assert!(ing.offer(s, p, o).is_none());
        let (s, p, o) = triple(1);
        assert!(
            ing.offer(s, p, o).is_some(),
            "buffer must never exceed max_buffered"
        );
        assert_eq!(ing.buffered(), 0);
    }

    #[test]
    fn time_trigger_fires_via_tick() {
        let mut ing = ingestor(IngestorConfig {
            max_buffered: 64,
            publish_count: 100,
            publish_interval: Some(Duration::ZERO),
            window: None,
        });
        assert!(ing.tick().is_none(), "empty buffer: nothing to publish");
        let (s, p, o) = triple(0);
        // A zero interval is already due at offer time.
        assert!(ing.offer(s, p, o).is_some());
    }

    #[test]
    fn sliding_window_expires_old_triples() {
        let mut ing = ingestor(IngestorConfig {
            max_buffered: 64,
            publish_count: 1,
            publish_interval: None,
            window: Some(Duration::ZERO), // everything expires on the next publish
        });
        let reader = ing.reader("kb");
        let (s, p, o) = triple(0);
        let d1 = ing.offer(s, p, o).expect("publish_count=1 publishes");
        assert_eq!(d1.predicates[0].inserts, 1);
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 1);
        assert_eq!(ing.live_in_window(), 1);

        // The next publish expires the first triple while inserting the
        // second: the delta shows both the insert and the remove.
        let (s, p, o) = triple(1);
        let d2 = ing.offer(s, p, o).expect("publish");
        assert_eq!(d2.predicates.len(), 1);
        assert_eq!((d2.predicates[0].inserts, d2.predicates[0].removes), (1, 1));
        let rows = reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap();
        assert_eq!(rows.len(), 1, "window holds only the newest triple");

        // Draining the window entirely via tick: the last triple expires.
        let d3 = ing.tick().expect("expiry is due");
        assert_eq!((d3.predicates[0].inserts, d3.predicates[0].removes), (0, 1));
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 0);
        assert_eq!(ing.live_in_window(), 0);
        assert!(ing.tick().is_none(), "nothing left to expire");
    }

    #[test]
    fn manual_clock_drives_time_trigger_and_window_deterministically() {
        use sofya_endpoint::ManualClock;
        let clock = Arc::new(ManualClock::new());
        let mut ing = StreamIngestor::with_clock(
            SnapshotStore::new(TripleStore::new()),
            IngestorConfig {
                max_buffered: 64,
                publish_count: 100,
                publish_interval: Some(Duration::from_secs(5)),
                window: Some(Duration::from_secs(60)),
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let reader = ing.reader("kb");
        let (s, p, o) = triple(0);
        assert!(ing.offer(s, p, o).is_none(), "interval not yet elapsed");
        clock.advance(Duration::from_secs(4));
        assert!(ing.tick().is_none(), "4s < 5s interval: not due");
        clock.advance(Duration::from_secs(1));
        let d = ing.tick().expect("5s elapsed: time trigger fires");
        assert_eq!(d.predicates[0].inserts, 1);
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 1);

        // The published triple was stamped at t=5s; a 60s window expires
        // it exactly at t=65s, not a tick sooner.
        clock.advance(Duration::from_secs(59));
        assert!(ing.tick().is_none(), "59s in window: not expired");
        clock.advance(Duration::from_secs(1));
        let d = ing.tick().expect("window lapsed: expiry publish");
        assert_eq!((d.predicates[0].inserts, d.predicates[0].removes), (0, 1));
        assert_eq!(reader.select("SELECT ?s { ?s <r:p> ?o }").unwrap().len(), 0);
    }

    #[test]
    fn shared_ingestor_reports_covering_epoch() {
        let shared = SharedIngestor::new(ingestor(IngestorConfig {
            max_buffered: 64,
            publish_count: 2,
            publish_interval: None,
            window: None,
        }));
        let base = shared.with(|i| i.current_epoch());
        let (s, p, o) = triple(0);
        let buffered_epoch = shared.ingest(vec![(s, p, o)]).unwrap();
        assert_eq!(buffered_epoch, base, "buffered batch reports current epoch");
        let (s, p, o) = triple(1);
        let published_epoch = shared.ingest(vec![(s, p, o)]).unwrap();
        assert!(published_epoch > base, "publishing batch reports new epoch");
        assert_eq!(shared.with(|i| i.current_epoch()), published_epoch);
    }
}
