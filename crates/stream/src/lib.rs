//! # sofya-stream
//!
//! The streaming tier: alignment that stays fresh while the knowledge
//! bases keep changing, without ever re-mining from scratch.
//!
//! The paper's setting is *on-the-fly* alignment against live
//! endpoints; this crate closes the loop for KBs that are not merely
//! live but **moving**. Three pieces compose end to end:
//!
//! 1. [`StreamIngestor`] — the write path. Offered triples are
//!    micro-batched (count / time / capacity publish triggers) into a
//!    [`sofya_endpoint::SnapshotStore`], optionally under a sliding
//!    window that expires old triples on publish. Every publish yields
//!    a [`sofya_endpoint::PublishDelta`] — O(mutations), accumulated in
//!    the writer path — retained in a ring for subscribers.
//!    [`SharedIngestor`] adapts it to the network tier's
//!    [`sofya_net::IngestSink`], so `POST /ingest` feeds the same
//!    machinery behind the scheduler's quotas and backpressure.
//! 2. [`FreshnessTracker`] — the subscription. It replays missed deltas
//!    into an [`sofya_core::AlignmentSession`], which marks dirty
//!    exactly the cached relations whose recorded evidence footprints
//!    intersect the delta (and resyncs from scratch only when the ring
//!    evicted the gap). The differential guarantee: an incrementally
//!    maintained session answers **bit-identically** to a fresh session
//!    built at the same epoch.
//! 3. [`run_refresher`] — the background loop that re-mines dirty
//!    relations eagerly, keeping re-alignment latency off the query
//!    path and the `GET /metrics` freshness gauges
//!    (`last_publish_epoch`, `dirty_relations`,
//!    `alignment_staleness_epochs`) honest.

#![forbid(unsafe_code)]

pub mod ingestor;
pub mod refresher;
pub mod tracker;

pub use ingestor::{IngestorConfig, SharedIngestor, StreamIngestor};
pub use refresher::run_refresher;
pub use tracker::{FreshnessTracker, KbSide, SyncOutcome};
