//! The background refresher: eager re-mining of dirtied alignments.
//!
//! Without it, a dirtied relation pays its re-mine on the next
//! [`AlignmentSession::rules_for`] — correct, but the unlucky first
//! caller eats the latency. [`run_refresher`] moves that cost off the
//! query path: a dedicated thread syncs the trackers, re-mines whatever
//! went dirty, and syncs again so the freshness gauges observe the
//! recovery, sleeping `poll` between rounds.
//!
//! The loop is cooperative: it runs on the caller's thread (spawn it
//! under `std::thread::scope` next to the session it borrows) and exits
//! when `stop` is raised or a re-mine fails (the error propagates — the
//! supervisor decides whether to restart).

use crate::tracker::FreshnessTracker;
use sofya_core::{AlignError, AlignmentSession};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Runs the refresh loop until `stop` is raised. Returns the total
/// number of relation re-mines performed, or the first alignment error.
pub fn run_refresher(
    session: &AlignmentSession<'_>,
    trackers: &mut [FreshnessTracker],
    stop: &AtomicBool,
    poll: Duration,
) -> Result<u64, AlignError> {
    let mut refreshed = 0u64;
    loop {
        for tracker in trackers.iter_mut() {
            tracker.sync(session);
        }
        let round = session.refresh_dirty()? as u64;
        if round > 0 {
            refreshed += round;
            // The gauges still report the pre-refresh dirtiness; sync
            // again so they observe the recovery promptly.
            for tracker in trackers.iter_mut() {
                tracker.sync(session);
            }
        }
        if stop.load(Ordering::Acquire) {
            return Ok(refreshed);
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::KbSide;
    use sofya_core::AlignerConfig;
    use sofya_endpoint::{Endpoint, LocalEndpoint, SnapshotStore};
    use sofya_rdf::{Term, TripleStore};

    const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";

    #[test]
    fn refresher_re_mines_dirtied_relations_in_the_background() {
        let mut yago = TripleStore::new();
        let mut dbp = TripleStore::new();
        for i in 0..8 {
            let (py, pd) = (format!("y:p{i}"), format!("d:P{i}"));
            let (cy, cd) = (format!("y:c{i}"), format!("d:C{i}"));
            yago.insert_terms(&Term::iri(&py), &Term::iri("y:born"), &Term::iri(&cy));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri("d:birthPlace"), &Term::iri(&cd));
            yago.insert_terms(&Term::iri(&py), &Term::iri(SA), &Term::iri(&pd));
            yago.insert_terms(&Term::iri(&cy), &Term::iri(SA), &Term::iri(&cd));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri(SA), &Term::iri(&py));
            dbp.insert_terms(&Term::iri(&cd), &Term::iri(SA), &Term::iri(&cy));
        }
        let source = LocalEndpoint::new("dbp", dbp);
        let mut writer = SnapshotStore::new(yago);
        let target = writer.reader("yago");
        let gauge = writer.freshness();
        let session = AlignmentSession::new(
            &source,
            &target as &dyn Endpoint,
            AlignerConfig::paper_defaults(1),
        );
        session.rules_for("y:born").unwrap();

        let mut trackers = vec![FreshnessTracker::new(&writer, KbSide::Target)];
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let refresher = scope
                .spawn(|| run_refresher(&session, &mut trackers, &stop, Duration::from_millis(1)));
            // Dirty the mined relation, then wait for the background
            // loop to clean it up.
            writer.store_mut().insert_terms(
                &Term::iri("y:p0"),
                &Term::iri("y:born"),
                &Term::iri("y:elsewhere"),
            );
            writer.publish();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while !session.dirty_relations().is_empty() {
                assert!(
                    std::time::Instant::now() < deadline,
                    "refresher never cleaned the dirty relation"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
            stop.store(true, Ordering::Release);
            let refreshed = refresher.join().unwrap().unwrap();
            assert!(refreshed >= 1, "at least one re-mine ran: {refreshed}");
        });
        assert_eq!(gauge.dirty_relations(), 0);
        assert_eq!(gauge.staleness_epochs(), 0);
    }
}
