//! Delta subscription: keeping an [`AlignmentSession`] honest about a
//! store that keeps publishing.
//!
//! A [`FreshnessTracker`] remembers the last epoch it applied to the
//! session and, on every [`FreshnessTracker::sync`], asks the store's
//! [`DeltaLog`] for the gap. Three outcomes mirror
//! [`sofya_endpoint::CatchUp`]:
//!
//! * **up to date** — nothing to do;
//! * **replayable gap** — each missed [`sofya_endpoint::PublishDelta`]
//!   is applied in
//!   order, marking dirty exactly the cached relations whose evidence
//!   footprints intersect it;
//! * **evicted gap** — the ring no longer covers the subscriber's
//!   epoch, so footprint-based dirtiness cannot be decided: the session
//!   drops every cached alignment ([`AlignmentSession::invalidate_all`])
//!   and the tracker resubscribes at the latest epoch.
//!
//! After applying, the tracker updates the shared [`FreshnessGauge`]:
//! `dirty_relations` (how many cached alignments are stale right now)
//! and `staleness_epochs` (how far, in store generations, the session
//! has drifted since it was last fully clean). Call `sync` again after
//! [`AlignmentSession::refresh_dirty`] so the gauges observe the
//! recovery.

use sofya_core::AlignmentSession;
use sofya_endpoint::{CatchUp, DeltaLog, FreshnessGauge, SnapshotStore};
use std::sync::Arc;

/// Which side of an [`AlignmentSession`] a store feeds: the source KB
/// `K'` (where rule premises are mined) or the target KB `K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KbSide {
    /// Deltas dirty relations through their source-side footprints.
    Source,
    /// Deltas dirty relations through their target-side footprints.
    Target,
}

/// What one [`FreshnessTracker::sync`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SyncOutcome {
    /// Deltas replayed from the ring.
    pub applied: usize,
    /// Cached relations newly marked dirty by this sync.
    pub newly_dirty: usize,
    /// The gap was evicted: every cached alignment was dropped and the
    /// tracker resubscribed at the latest epoch.
    pub resynced: bool,
}

/// One store's delta subscription on behalf of one alignment session.
///
/// A session over two live stores holds two trackers — one per
/// [`KbSide`] — each pacing its own store's delta ring.
pub struct FreshnessTracker {
    log: Arc<DeltaLog>,
    gauge: Arc<FreshnessGauge>,
    side: KbSide,
    last_applied: u64,
    /// The epoch at which the session was last observed fully clean;
    /// `last_applied - clean_epoch` is the staleness gauge.
    clean_epoch: u64,
}

impl FreshnessTracker {
    /// Subscribes at the store's currently published epoch.
    pub fn new(store: &SnapshotStore, side: KbSide) -> Self {
        let epoch = store.current().version();
        Self {
            log: store.delta_log(),
            gauge: store.freshness(),
            side,
            last_applied: epoch,
            clean_epoch: epoch,
        }
    }

    /// The newest epoch whose delta has been applied to the session.
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }

    /// Which session side this tracker feeds.
    pub fn side(&self) -> KbSide {
        self.side
    }

    /// Catches the session up to the store's latest published epoch and
    /// refreshes the freshness gauges.
    pub fn sync(&mut self, session: &AlignmentSession<'_>) -> SyncOutcome {
        let mut outcome = SyncOutcome::default();
        match self.log.deltas_since(self.last_applied) {
            CatchUp::UpToDate => {}
            CatchUp::Deltas(deltas) => {
                for delta in &deltas {
                    outcome.newly_dirty += match self.side {
                        KbSide::Source => session.apply_source_delta(delta),
                        KbSide::Target => session.apply_target_delta(delta),
                    };
                    self.last_applied = delta.epoch;
                }
                outcome.applied = deltas.len();
            }
            CatchUp::Resync { latest_epoch, .. } => {
                session.invalidate_all();
                self.last_applied = latest_epoch;
                // Nothing cached survives, so nothing is stale either.
                self.clean_epoch = latest_epoch;
                outcome.resynced = true;
            }
        }
        let dirty = session.dirty_relations().len() as u64;
        if dirty == 0 {
            self.clean_epoch = self.last_applied;
        }
        self.gauge.set_dirty_relations(dirty);
        self.gauge
            .set_staleness_epochs(self.last_applied.saturating_sub(self.clean_epoch));
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofya_core::AlignerConfig;
    use sofya_endpoint::Endpoint;
    use sofya_rdf::{Term, TripleStore};

    const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";

    /// A linked pair where `d:birthPlace ⇒ y:born` is minable.
    fn stores() -> (TripleStore, TripleStore) {
        let mut yago = TripleStore::new();
        let mut dbp = TripleStore::new();
        for i in 0..8 {
            let (py, pd) = (format!("y:p{i}"), format!("d:P{i}"));
            let (cy, cd) = (format!("y:c{i}"), format!("d:C{i}"));
            yago.insert_terms(&Term::iri(&py), &Term::iri("y:born"), &Term::iri(&cy));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri("d:birthPlace"), &Term::iri(&cd));
            yago.insert_terms(&Term::iri(&py), &Term::iri(SA), &Term::iri(&pd));
            yago.insert_terms(&Term::iri(&cy), &Term::iri(SA), &Term::iri(&cd));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri(SA), &Term::iri(&py));
            dbp.insert_terms(&Term::iri(&cd), &Term::iri(SA), &Term::iri(&cy));
        }
        (dbp, yago)
    }

    #[test]
    fn sync_applies_the_gap_and_updates_gauges() {
        let (dbp, yago) = stores();
        let source = sofya_endpoint::LocalEndpoint::new("dbp", dbp);
        let mut target_writer = SnapshotStore::new(yago);
        let target = target_writer.reader("yago");
        let gauge = target_writer.freshness();

        let session = AlignmentSession::new(
            &source,
            &target as &dyn Endpoint,
            AlignerConfig::paper_defaults(1),
        );
        let mut tracker = FreshnessTracker::new(&target_writer, KbSide::Target);
        session.rules_for("y:born").unwrap();
        assert_eq!(tracker.sync(&session), SyncOutcome::default());
        assert_eq!(gauge.dirty_relations(), 0);

        // Two publishes land while the tracker sleeps: one unrelated,
        // one touching the mined relation.
        target_writer.store_mut().insert_terms(
            &Term::iri("y:x"),
            &Term::iri("y:unrelated"),
            &Term::iri("y:y"),
        );
        target_writer.publish();
        target_writer.store_mut().insert_terms(
            &Term::iri("y:p0"),
            &Term::iri("y:born"),
            &Term::iri("y:elsewhere"),
        );
        target_writer.publish();

        let outcome = tracker.sync(&session);
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.newly_dirty, 1);
        assert!(!outcome.resynced);
        assert_eq!(session.dirty_relations(), vec!["y:born"]);
        assert_eq!(gauge.dirty_relations(), 1);
        assert!(gauge.staleness_epochs() > 0);
        assert_eq!(tracker.last_applied(), target_writer.current().version());

        // Refresh, then sync again: gauges observe the recovery.
        assert_eq!(session.refresh_dirty().unwrap(), 1);
        tracker.sync(&session);
        assert_eq!(gauge.dirty_relations(), 0);
        assert_eq!(gauge.staleness_epochs(), 0);
    }

    #[test]
    fn evicted_gap_invalidates_everything() {
        let (dbp, yago) = stores();
        let source = sofya_endpoint::LocalEndpoint::new("dbp", dbp);
        // A 1-slot ring: two publishes evict the subscriber's gap.
        let mut target_writer = SnapshotStore::with_delta_capacity(yago, 1);
        let target = target_writer.reader("yago");

        let session = AlignmentSession::new(
            &source,
            &target as &dyn Endpoint,
            AlignerConfig::paper_defaults(1),
        );
        let mut tracker = FreshnessTracker::new(&target_writer, KbSide::Target);
        session.rules_for("y:born").unwrap();

        for i in 0..2 {
            target_writer.store_mut().insert_terms(
                &Term::iri(format!("y:n{i}")),
                &Term::iri("y:unrelated"),
                &Term::iri(format!("y:m{i}")),
            );
            target_writer.publish();
        }
        let outcome = tracker.sync(&session);
        assert!(outcome.resynced, "{outcome:?}");
        assert!(
            session.cached_relations().is_empty(),
            "resync must drop every cached alignment"
        );
        assert_eq!(tracker.last_applied(), target_writer.current().version());
        // Subscribed again: the next publish replays incrementally.
        target_writer.store_mut().insert_terms(
            &Term::iri("y:n9"),
            &Term::iri("y:unrelated"),
            &Term::iri("y:m9"),
        );
        target_writer.publish();
        let outcome = tracker.sync(&session);
        assert_eq!((outcome.applied, outcome.resynced), (1, false));
    }
}
