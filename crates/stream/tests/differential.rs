//! The differential guarantee, property-tested: an incrementally
//! maintained [`AlignmentSession`] — footprint-dirtied by replayed
//! deltas, re-mined via `refresh_dirty` — answers **bit-identically**
//! to a session built from scratch at the same epoch, under arbitrary
//! interleavings of inserts, removes, batch loads, and publishes.
//!
//! Because every per-relation mine seeds its RNG deterministically from
//! the relation IRI, "same published state" implies "same rules", so
//! exact `Vec<SubsumptionRule>` equality (confidences included) is the
//! right assertion — any drift means the dirty tracking missed an
//! intersecting delta.

use proptest::prelude::*;
use sofya_core::{AlignerConfig, AlignmentSession};
use sofya_endpoint::{Endpoint, LocalEndpoint, SnapshotStore};
use sofya_rdf::{Term, TripleStore};
use sofya_stream::{FreshnessTracker, KbSide};

const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";

/// Target-side relations the ops mutate (and the sessions mine).
const RELATIONS: [&str; 3] = ["y:born", "y:livesIn", "y:diedIn"];

fn entity(i: u32) -> Term {
    Term::iri(format!("y:p{i}"))
}

fn city(i: u32) -> Term {
    Term::iri(format!("y:c{i}"))
}

/// A linked pair: 8 sameAs-bridged entities and cities, with each
/// target relation mirrored by a minable source premise.
fn stores() -> (TripleStore, TripleStore) {
    let mut yago = TripleStore::new();
    let mut dbp = TripleStore::new();
    let premises = ["d:birthPlace", "d:residence", "d:deathPlace"];
    for i in 0..8u32 {
        let (py, pd) = (format!("y:p{i}"), format!("d:P{i}"));
        let (cy, cd) = (format!("y:c{i}"), format!("d:C{i}"));
        for (relation, premise) in RELATIONS.iter().zip(premises) {
            yago.insert_terms(&Term::iri(&py), &Term::iri(*relation), &Term::iri(&cy));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri(premise), &Term::iri(&cd));
        }
        yago.insert_terms(&Term::iri(&py), &Term::iri(SA), &Term::iri(&pd));
        yago.insert_terms(&Term::iri(&cy), &Term::iri(SA), &Term::iri(&cd));
        dbp.insert_terms(&Term::iri(&pd), &Term::iri(SA), &Term::iri(&py));
        dbp.insert_terms(&Term::iri(&cd), &Term::iri(SA), &Term::iri(&cy));
    }
    (dbp, yago)
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert `(y:p{s}, RELATIONS[r], y:c{o})` into the target store.
    Insert(u32, usize, u32),
    /// Remove the same shape, if present.
    Remove(u32, usize, u32),
    /// A burst of inserts landing in one future publish.
    LoadBatch(Vec<(u32, usize, u32)>),
    /// Insert a triple no relation's footprint cares about.
    InsertUnrelated(u32),
    /// Publish whatever accumulated (possibly a no-op publish).
    Publish,
}

fn triple_strategy() -> impl Strategy<Value = (u32, usize, u32)> {
    (0u32..10, 0usize..RELATIONS.len(), 0u32..10)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        triple_strategy().prop_map(|(s, r, o)| Op::Insert(s, r, o)),
        triple_strategy().prop_map(|(s, r, o)| Op::Remove(s, r, o)),
        proptest::collection::vec(triple_strategy(), 1..6).prop_map(Op::LoadBatch),
        (0u32..6).prop_map(Op::InsertUnrelated),
        Just(Op::Publish),
    ]
}

fn apply(writer: &mut SnapshotStore, op: &Op) -> bool {
    match op {
        Op::Insert(s, r, o) => {
            writer
                .store_mut()
                .insert_terms(&entity(*s), &Term::iri(RELATIONS[*r]), &city(*o));
            false
        }
        Op::Remove(s, r, o) => {
            let store = writer.store_mut();
            let ids = (
                store.dict().lookup(&entity(*s)),
                store.dict().lookup(&Term::iri(RELATIONS[*r])),
                store.dict().lookup(&city(*o)),
            );
            if let (Some(s), Some(p), Some(o)) = ids {
                store.remove(s, p, o);
            }
            false
        }
        Op::LoadBatch(batch) => {
            for (s, r, o) in batch {
                writer
                    .store_mut()
                    .insert_terms(&entity(*s), &Term::iri(RELATIONS[*r]), &city(*o));
            }
            false
        }
        Op::InsertUnrelated(i) => {
            writer.store_mut().insert_terms(
                &Term::iri(format!("y:misc{i}")),
                &Term::iri("y:unrelated"),
                &Term::iri("y:junk"),
            );
            false
        }
        Op::Publish => true,
    }
}

proptest! {
    // Each publish re-mines and cross-checks up to three relations
    // against a from-scratch session, so keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_session_is_bit_identical_to_from_scratch(
        ops in proptest::collection::vec(op_strategy(), 8..32),
    ) {
        let (dbp, yago) = stores();
        let source = LocalEndpoint::new("dbp", dbp);
        let mut writer = SnapshotStore::new(yago);
        let target = writer.reader("yago");
        let config = AlignerConfig::paper_defaults(1);

        let incremental =
            AlignmentSession::new(&source, &target as &dyn Endpoint, config.clone());
        let mut tracker = FreshnessTracker::new(&writer, KbSide::Target);
        for relation in RELATIONS {
            incremental.rules_for(relation).unwrap();
        }

        for op in &ops {
            if !apply(&mut writer, op) {
                continue;
            }
            writer.publish();
            tracker.sync(&incremental);
            incremental.refresh_dirty().unwrap();
            prop_assert!(incremental.dirty_relations().is_empty());

            // A fresh session at the same epoch must agree exactly.
            let fresh =
                AlignmentSession::new(&source, &target as &dyn Endpoint, config.clone());
            for relation in RELATIONS {
                let incremental_rules = incremental.rules_for(relation).unwrap();
                let fresh_rules = fresh.rules_for(relation).unwrap();
                prop_assert_eq!(
                    incremental_rules,
                    fresh_rules,
                    "relation {} diverged at epoch {}",
                    relation,
                    writer.current().version()
                );
            }
        }

        // Flush any tail mutations and check the final epoch too.
        writer.publish();
        tracker.sync(&incremental);
        incremental.refresh_dirty().unwrap();
        let fresh = AlignmentSession::new(&source, &target as &dyn Endpoint, config);
        for relation in RELATIONS {
            prop_assert_eq!(
                incremental.rules_for(relation).unwrap(),
                fresh.rules_for(relation).unwrap(),
                "relation {} diverged at the final epoch",
                relation
            );
        }
    }
}
