//! End-to-end over a real loopback socket: `POST /ingest` feeds a
//! [`SharedIngestor`], the publish becomes visible to `/query` readers
//! on the same server, and `GET /metrics` reports the freshness gauges.

use sofya_net::http::{read_response, write_request, HttpResponse};
use sofya_net::{HttpServer, RemoteEndpoint, ServerConfig};
use sofya_rdf::{Term, TripleStore};
use sofya_stream::{IngestorConfig, SharedIngestor, StreamIngestor};
use std::io::BufReader;
use std::net::SocketAddr;
use std::sync::Arc;

use sofya_endpoint::{EndpointExt, SnapshotStore};

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> HttpResponse {
    let mut conn = std::net::TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write_request(
        &mut conn,
        method,
        path,
        &[("X-Client", "e2e"), ("Connection", "close")],
        body,
    )
    .unwrap();
    read_response(&mut BufReader::new(conn)).expect("response")
}

fn body_text(response: &HttpResponse) -> String {
    String::from_utf8_lossy(&response.body).into_owned()
}

#[test]
fn ingest_route_publishes_and_metrics_report_freshness() {
    let mut seed = TripleStore::new();
    seed.insert_terms(&Term::iri("e:s"), &Term::iri("e:p"), &Term::iri("e:o"));
    let ingestor = StreamIngestor::new(
        SnapshotStore::new(seed),
        IngestorConfig {
            publish_count: 1, // every ingest batch publishes immediately
            ..IngestorConfig::default()
        },
    );
    let reader = ingestor.reader("kb");
    let gauge = ingestor.freshness();
    let shared = SharedIngestor::new(ingestor);

    let config = ServerConfig {
        ingest: Some(shared.clone()),
        freshness: Some(Arc::clone(&gauge)),
        ..ServerConfig::default()
    };
    let server = HttpServer::start(Arc::new(reader), config, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // An N-Triples body lands, publishes, and reports the new epoch.
    let nt = b"<e:alice> <e:knows> <e:bob> .\n<e:bob> <e:knows> <e:carol> .\n";
    let response = request(addr, "POST", "/ingest", nt);
    assert_eq!(response.status, 202, "{}", body_text(&response));
    let body = body_text(&response);
    assert!(body.contains("\"ok\":true"), "{body}");
    assert!(body.contains("\"epoch\":"), "{body}");
    let epoch = shared.with(|ing| ing.current_epoch());
    assert!(epoch > 0);
    assert!(body.contains(&format!("\"epoch\":{epoch}")), "{body}");

    // The publish is visible to query traffic on the same server.
    let remote = RemoteEndpoint::new("kb", addr);
    assert!(remote.ask("ASK { <e:alice> <e:knows> <e:bob> }").unwrap());

    // A line-JSON body works too and advances the epoch.
    let json = b"{\"s\":{\"t\":\"iri\",\"v\":\"e:carol\"},\"p\":{\"t\":\"iri\",\"v\":\"e:knows\"},\"o\":{\"t\":\"iri\",\"v\":\"e:dave\"}}\n";
    let response = request(addr, "POST", "/ingest", json);
    assert_eq!(response.status, 202, "{}", body_text(&response));
    assert!(remote.ask("ASK { <e:carol> <e:knows> <e:dave> }").unwrap());

    // The freshness gauges ride on /metrics.
    let response = request(addr, "GET", "/metrics", b"");
    assert_eq!(response.status, 200);
    let metrics = body_text(&response);
    let current = shared.with(|ing| ing.current_epoch());
    assert!(
        metrics.contains(&format!("\"last_publish_epoch\":{current}")),
        "{metrics}"
    );
    assert!(metrics.contains("\"dirty_relations\":0"), "{metrics}");
    assert!(
        metrics.contains("\"alignment_staleness_epochs\":0"),
        "{metrics}"
    );
    drop(gauge);

    // A malformed body is a client error, not a publish.
    let response = request(addr, "POST", "/ingest", b"this is not a triple\n");
    assert_eq!(response.status, 400, "{}", body_text(&response));
    assert_eq!(shared.with(|ing| ing.current_epoch()), current);

    // An empty body has nothing to ingest.
    let response = request(addr, "POST", "/ingest", b"");
    assert_eq!(response.status, 400, "{}", body_text(&response));

    server.shutdown();
}

#[test]
fn ingest_route_is_absent_on_a_pure_query_server() {
    let mut store = TripleStore::new();
    store.insert_terms(&Term::iri("e:s"), &Term::iri("e:p"), &Term::iri("e:o"));
    let server = HttpServer::start(
        Arc::new(sofya_endpoint::LocalEndpoint::new("kb", store)),
        ServerConfig::default(),
        "127.0.0.1:0",
    )
    .expect("bind loopback");
    let response = request(server.addr(), "POST", "/ingest", b"<e:a> <e:b> <e:c> .\n");
    assert_eq!(response.status, 404, "{}", body_text(&response));
    server.shutdown();
}
