//! The incremental payoff, pinned: after a delta dirtying 1 of 32
//! cached relation alignments, re-mining just the dirty one must be at
//! least 10x faster than re-aligning all 32 from scratch.
//!
//! Timing-sensitive, so the assertion only runs in release builds; the
//! `stream/realign_dirty_1_of_32` perf_report case pins the absolute
//! numbers against a committed baseline.

use sofya_core::{AlignerConfig, AlignmentSession};
use sofya_endpoint::{Endpoint, LocalEndpoint, SnapshotStore};
use sofya_rdf::{Term, TripleStore};
use sofya_stream::{FreshnessTracker, KbSide};
use std::time::Instant;

const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";
const RELATIONS: usize = 32;

/// 32 parallel relation families, each minable from its own premise.
fn stores() -> (TripleStore, TripleStore) {
    let mut yago = TripleStore::new();
    let mut dbp = TripleStore::new();
    for k in 0..RELATIONS {
        for i in 0..12 {
            let (py, pd) = (format!("y:p{k}_{i}"), format!("d:P{k}_{i}"));
            let (cy, cd) = (format!("y:c{k}_{i}"), format!("d:C{k}_{i}"));
            yago.insert_terms(
                &Term::iri(&py),
                &Term::iri(format!("y:r{k}")),
                &Term::iri(&cy),
            );
            dbp.insert_terms(
                &Term::iri(&pd),
                &Term::iri(format!("d:q{k}")),
                &Term::iri(&cd),
            );
            yago.insert_terms(&Term::iri(&py), &Term::iri(SA), &Term::iri(&pd));
            yago.insert_terms(&Term::iri(&cy), &Term::iri(SA), &Term::iri(&cd));
            dbp.insert_terms(&Term::iri(&pd), &Term::iri(SA), &Term::iri(&py));
            dbp.insert_terms(&Term::iri(&cd), &Term::iri(SA), &Term::iri(&cy));
        }
    }
    (dbp, yago)
}

#[cfg_attr(
    debug_assertions,
    ignore = "timing-sensitive ratio; run with --release"
)]
#[test]
fn realigning_one_dirty_relation_beats_from_scratch_by_10x() {
    let (dbp, yago) = stores();
    let source = LocalEndpoint::new("dbp", dbp);
    let mut writer = SnapshotStore::new(yago);
    let target = writer.reader("yago");
    let config = AlignerConfig::paper_defaults(1);

    let session = AlignmentSession::new(&source, &target as &dyn Endpoint, config.clone());
    let mut tracker = FreshnessTracker::new(&writer, KbSide::Target);
    for k in 0..RELATIONS {
        session.rules_for(&format!("y:r{k}")).unwrap();
    }

    // One publish touches exactly one mined relation.
    writer.store_mut().insert_terms(
        &Term::iri("y:p7_0"),
        &Term::iri("y:r7"),
        &Term::iri("y:c_fresh"),
    );
    writer.publish();
    tracker.sync(&session);
    assert_eq!(session.dirty_relations(), vec!["y:r7".to_owned()]);

    let incremental_start = Instant::now();
    assert_eq!(session.refresh_dirty().unwrap(), 1);
    let incremental = incremental_start.elapsed();

    // From scratch at the same epoch: a cold session mines all 32.
    let scratch_start = Instant::now();
    let fresh = AlignmentSession::new(&source, &target as &dyn Endpoint, config);
    for k in 0..RELATIONS {
        fresh.rules_for(&format!("y:r{k}")).unwrap();
    }
    let scratch = scratch_start.elapsed();

    let ratio = scratch.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 10.0,
        "expected >= 10x speedup, got {ratio:.1}x \
         (incremental {incremental:?}, from scratch {scratch:?})"
    );
}
