//! Jaro and Jaro–Winkler similarity.

/// Jaro similarity in `[0, 1]`.
///
/// Characters match when equal and within the standard window
/// `max(|a|,|b|)/2 − 1`; the score combines match counts and
/// transpositions per Jaro's formula. Two empty strings score `1.0`; an
/// empty vs non-empty pair scores `0.0`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    // First pass: find matches in order of a.
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Second pass: matched characters of b in b-order.
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(&c, &used)| used.then_some(c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * PREFIX_SCALE * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Winkler's canonical examples.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
        assert!(close(jaro("DWAYNE", "DUANE"), 0.822));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro("abc", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("MARTHA", "MARHTA"), ("DIXON", "DICKSONX"), ("x", "xyz")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn winkler_boost_only_helps_shared_prefixes() {
        // Same Jaro, different prefixes → JW ranks prefix-sharing higher.
        let with_prefix = jaro_winkler("prefixab", "prefixba");
        let without = jaro_winkler("abprefix", "baprefix");
        assert!(with_prefix > without);
    }

    #[test]
    fn winkler_never_below_jaro_and_bounded() {
        for (a, b) in [("MARTHA", "MARHTA"), ("abcd", "abdc"), ("a", "b")] {
            let j = jaro(a, b);
            let jw = jaro_winkler(a, b);
            assert!(jw >= j - 1e-12);
            assert!((0.0..=1.0).contains(&jw));
        }
    }

    #[test]
    fn single_char_behaviour() {
        assert_eq!(jaro("a", "a"), 1.0);
        assert_eq!(jaro("a", "b"), 0.0);
    }
}
