//! Longest common subsequence similarity.
//!
//! LCS tolerates *insertions* on either side better than edit distance
//! ("The Shawshank Redemption" vs "Shawshank Redemption (1994 film)"),
//! which is common in cross-KB labels that add qualifiers.

/// Length of the longest common subsequence of `a` and `b`, over Unicode
/// scalar values. O(|a|·|b|) time, two-row space.
pub fn lcs_length(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; short.len() + 1];
    let mut cur = vec![0usize; short.len() + 1];
    for &lc in long.iter() {
        for (j, &sc) in short.iter().enumerate() {
            cur[j + 1] = if lc == sc {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// LCS similarity: `|LCS| / max(|a|, |b|)`, in `[0, 1]`; `1.0` for two
/// empty strings.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    lcs_length(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(lcs_length("ABCBDAB", "BDCABA"), 4); // BCBA or BDAB
        assert_eq!(lcs_length("abc", "abc"), 3);
        assert_eq!(lcs_length("abc", "def"), 0);
        assert_eq!(lcs_length("", "abc"), 0);
        assert_eq!(lcs_length("", ""), 0);
    }

    #[test]
    fn subsequence_not_substring() {
        assert_eq!(lcs_length("axbxc", "abc"), 3);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            lcs_length("sunday", "saturday"),
            lcs_length("saturday", "sunday")
        );
    }

    #[test]
    fn qualifier_tolerant() {
        let s = lcs_similarity("shawshank redemption", "shawshank redemption 1994 film");
        assert!(s > 0.65, "got {s}");
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(lcs_similarity("", ""), 1.0);
        assert_eq!(lcs_similarity("same", "same"), 1.0);
        assert_eq!(lcs_similarity("abc", "xyz"), 0.0);
        for (a, b) in [("a", "ab"), ("frank", "sinatra")] {
            let v = lcs_similarity(a, b);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn lcs_relates_to_levenshtein() {
        // |a| + |b| − 2·LCS ≥ levenshtein distance bound relation:
        // the insert/delete-only edit distance equals |a|+|b|−2·LCS and
        // upper-bounds Levenshtein.
        for (a, b) in [("kitten", "sitting"), ("abc", "abcd"), ("flaw", "lawn")] {
            let indel = a.chars().count() + b.chars().count() - 2 * lcs_length(a, b);
            assert!(crate::levenshtein::levenshtein(a, b) <= indel, "{a} vs {b}");
        }
    }
}
