//! Edit distances: Levenshtein and Damerau (optimal string alignment).

/// Levenshtein distance between `a` and `b` (insertions, deletions,
/// substitutions, unit cost), computed over Unicode scalar values with the
/// classic two-row dynamic program — O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Keep the shorter string in the inner dimension for less memory.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein distance with an early exit: returns `None` as soon as the
/// distance provably exceeds `bound`. Useful when only "close enough"
/// matters, which is the literal-matcher case.
pub fn levenshtein_bounded(a: &str, b: &str, bound: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) > bound {
        return None;
    }
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return (long.len() <= bound).then_some(long.len());
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur: Vec<usize> = vec![0; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[short.len()];
    (d <= bound).then_some(d)
}

/// Damerau–Levenshtein in the *optimal string alignment* variant:
/// additionally counts adjacent transpositions as one edit, but never
/// edits a substring twice.
pub fn damerau_osa(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let cols = b.len() + 1;
    // Three rows needed for the transposition lookback.
    let mut rows: Vec<Vec<usize>> = vec![vec![0; cols]; a.len() + 1];
    for (i, row) in rows.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in rows[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut d = (rows[i - 1][j] + 1)
                .min(rows[i][j - 1] + 1)
                .min(rows[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                d = d.min(rows[i - 2][j - 2] + 1);
            }
            rows[i][j] = d;
        }
    }
    rows[a.len()][b.len()]
}

/// Levenshtein similarity: `1 − d / max(|a|, |b|)`, in `[0, 1]`; `1.0` for
/// two empty strings.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn is_symmetric() {
        assert_eq!(
            levenshtein("sunday", "saturday"),
            levenshtein("saturday", "sunday")
        );
    }

    #[test]
    fn unicode_counts_scalars_not_bytes() {
        // 'é' is 2 bytes but one scalar: one substitution.
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn bounded_agrees_with_unbounded_within_bound() {
        let pairs = [
            ("kitten", "sitting"),
            ("abc", "abc"),
            ("", "xyz"),
            ("flaw", "lawn"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d), "{a} vs {b}");
            assert_eq!(levenshtein_bounded(a, b, d + 2), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_gap_fast() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_osa("ca", "ac"), 1);
        // "sinatra" → "sintara" is a single adjacent swap of 'a'/'t'.
        assert_eq!(damerau_osa("sinatra", "sintara"), 1);
        assert_eq!(damerau_osa("frank", "farnk"), 1);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        let pairs = [
            ("kitten", "sitting"),
            ("ca", "ac"),
            ("frank", "farnk"),
            ("abcdef", "fedcba"),
        ];
        for (a, b) in pairs {
            assert!(damerau_osa(a, b) <= levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn similarity_bounds_and_identity() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("frank sinatra", "frank sinatra jr");
        assert!(s > 0.7 && s < 1.0);
    }
}
