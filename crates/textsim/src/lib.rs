//! # sofya-textsim
//!
//! String-similarity functions for aligning literal values.
//!
//! SOFYA (§2.2) aligns entity–literal relations by retrieving the sampled
//! subjects' facts from both knowledge bases and matching the literal
//! objects with "string similarity functions". The paper does not fix a
//! particular function; this crate implements the classical family from
//! scratch (no offline NLP crate covers them):
//!
//! * edit distances — [`levenshtein()`], [`damerau_osa`] (optimal string
//!   alignment), both with bounded early-exit variants;
//! * [`jaro()`] and [`jaro_winkler`];
//! * q-gram profiles with Jaccard / Dice / overlap / cosine coefficients;
//! * token-level measures (token-set Jaccard, Monge–Elkan over a
//!   character measure);
//! * a Unicode-lite normalisation pipeline (case folding, punctuation and
//!   whitespace squashing, ASCII folding for Latin-1 accents);
//! * a configurable [`LiteralMatcher`] combining the above, which is what
//!   `sofya-core` uses.
//!
//! All similarity functions return values in `[0, 1]`, `1.0` meaning
//! identical under that measure; this invariant is property-tested.

#![forbid(unsafe_code)]

pub mod jaro;
pub mod lcs;
pub mod levenshtein;
pub mod matcher;
pub mod normalize;
pub mod qgram;
pub mod token;

pub use jaro::{jaro, jaro_winkler};
pub use lcs::{lcs_length, lcs_similarity};
pub use levenshtein::{damerau_osa, levenshtein, levenshtein_bounded, levenshtein_similarity};
pub use matcher::{LiteralMatcher, MatcherConfig, SimilarityMeasure};
pub use normalize::{ascii_fold, normalize, NormalizeOptions};
pub use qgram::{cosine_qgram, dice_qgram, jaccard_qgram, overlap_qgram, QgramProfile};
pub use token::{monge_elkan, token_jaccard, tokenize};
