//! The configurable literal matcher used by the aligner.

use crate::jaro::jaro_winkler;
use crate::levenshtein::levenshtein_similarity;
use crate::normalize::{normalize, NormalizeOptions};
use crate::qgram::{dice_qgram, jaccard_qgram};
use crate::token::{monge_elkan, token_jaccard};

/// Which underlying similarity function the matcher applies after
/// normalisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimilarityMeasure {
    /// Levenshtein similarity (1 − normalised edit distance).
    Levenshtein,
    /// Jaro–Winkler.
    #[default]
    JaroWinkler,
    /// q-gram Jaccard with the configured gram size.
    QgramJaccard,
    /// q-gram Dice with the configured gram size.
    QgramDice,
    /// Token-set Jaccard.
    TokenJaccard,
    /// Monge–Elkan over Jaro–Winkler.
    MongeElkan,
    /// Maximum over Jaro–Winkler, q-gram Dice and Monge–Elkan — the
    /// forgiving default for cross-KB label matching.
    Hybrid,
}

/// Configuration for a [`LiteralMatcher`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatcherConfig {
    /// Similarity function.
    pub measure: SimilarityMeasure,
    /// Threshold in `[0,1]` above which two literals count as equal.
    pub threshold: f64,
    /// Gram size for the q-gram measures.
    pub gram_size: usize,
    /// Normalisation applied to both sides first.
    pub normalize: NormalizeOptions,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        Self {
            measure: SimilarityMeasure::Hybrid,
            threshold: 0.85,
            gram_size: 2,
            normalize: NormalizeOptions::default(),
        }
    }
}

/// Decides whether two literal lexical forms denote the same value.
///
/// ```
/// use sofya_textsim::LiteralMatcher;
///
/// let m = LiteralMatcher::default();
/// assert!(m.matches("Frank Sinatra", "frank_SINATRA"));
/// assert!(!m.matches("Frank Sinatra", "Ella Fitzgerald"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LiteralMatcher {
    config: MatcherConfig,
}

impl LiteralMatcher {
    /// Builds a matcher from a config.
    pub fn new(config: MatcherConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MatcherConfig {
        &self.config
    }

    /// Similarity of the two lexical forms after normalisation, in `[0,1]`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let na = normalize(a, self.config.normalize);
        let nb = normalize(b, self.config.normalize);
        // Exact equality after normalisation short-circuits every measure.
        if na == nb {
            return 1.0;
        }
        let q = self.config.gram_size;
        match self.config.measure {
            SimilarityMeasure::Levenshtein => levenshtein_similarity(&na, &nb),
            SimilarityMeasure::JaroWinkler => jaro_winkler(&na, &nb),
            SimilarityMeasure::QgramJaccard => jaccard_qgram(&na, &nb, q),
            SimilarityMeasure::QgramDice => dice_qgram(&na, &nb, q),
            SimilarityMeasure::TokenJaccard => token_jaccard(&na, &nb),
            SimilarityMeasure::MongeElkan => monge_elkan(&na, &nb),
            SimilarityMeasure::Hybrid => jaro_winkler(&na, &nb)
                .max(dice_qgram(&na, &nb, q))
                .max(monge_elkan(&na, &nb)),
        }
    }

    /// Whether the two lexical forms match under the configured threshold.
    pub fn matches(&self, a: &str, b: &str) -> bool {
        self.similarity(a, b) >= self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matcher_handles_surface_variants() {
        let m = LiteralMatcher::default();
        assert!(m.matches("Frank Sinatra", "frank_sinatra"));
        assert!(m.matches("Frank Sinatra", "Sinatra, Frank"));
        assert!(m.matches("Gödel, Kurt", "Kurt Godel"));
        assert!(!m.matches("Frank Sinatra", "Dean Martin"));
    }

    #[test]
    fn exact_after_normalisation_is_always_one() {
        for measure in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::QgramJaccard,
            SimilarityMeasure::QgramDice,
            SimilarityMeasure::TokenJaccard,
            SimilarityMeasure::MongeElkan,
            SimilarityMeasure::Hybrid,
        ] {
            let m = LiteralMatcher::new(MatcherConfig {
                measure,
                ..MatcherConfig::default()
            });
            assert_eq!(m.similarity("A.B.", "a b"), 1.0, "{measure:?}");
        }
    }

    #[test]
    fn each_measure_is_selectable_and_bounded() {
        for measure in [
            SimilarityMeasure::Levenshtein,
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::QgramJaccard,
            SimilarityMeasure::QgramDice,
            SimilarityMeasure::TokenJaccard,
            SimilarityMeasure::MongeElkan,
            SimilarityMeasure::Hybrid,
        ] {
            let m = LiteralMatcher::new(MatcherConfig {
                measure,
                ..MatcherConfig::default()
            });
            let v = m.similarity("composer of music", "writer of books");
            assert!((0.0..=1.0).contains(&v), "{measure:?} → {v}");
        }
    }

    #[test]
    fn hybrid_dominates_its_components() {
        let base = MatcherConfig::default();
        let hybrid = LiteralMatcher::new(MatcherConfig {
            measure: SimilarityMeasure::Hybrid,
            ..base
        });
        for component in [
            SimilarityMeasure::JaroWinkler,
            SimilarityMeasure::QgramDice,
            SimilarityMeasure::MongeElkan,
        ] {
            let m = LiteralMatcher::new(MatcherConfig {
                measure: component,
                ..base
            });
            for (a, b) in [("frank sinatra", "sinatra f."), ("berlin", "berlln")] {
                assert!(hybrid.similarity(a, b) >= m.similarity(a, b) - 1e-12);
            }
        }
    }

    #[test]
    fn threshold_is_respected() {
        let strict = LiteralMatcher::new(MatcherConfig {
            threshold: 0.99,
            ..Default::default()
        });
        let lax = LiteralMatcher::new(MatcherConfig {
            threshold: 0.5,
            ..Default::default()
        });
        let (a, b) = ("Frank Sinatra", "Frank Sinatre");
        assert!(!strict.matches(a, b));
        assert!(lax.matches(a, b));
    }
}
