//! Text normalisation applied before similarity measurement.
//!
//! Literal surface forms across knowledge bases differ in case,
//! punctuation, diacritics, and whitespace ("Frank Sinatra" vs
//! "frank_SINATRA" vs "Fránk  Sinatra."). Normalising both sides first
//! makes the character- and gram-level measures meaningful.

/// Options controlling [`normalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizeOptions {
    /// Lower-case everything.
    pub case_fold: bool,
    /// Replace punctuation and underscores with spaces.
    pub strip_punctuation: bool,
    /// Collapse runs of whitespace to a single space and trim the ends.
    pub squash_whitespace: bool,
    /// Map common Latin-1/Latin-Extended accented letters to ASCII.
    pub ascii_fold: bool,
}

impl Default for NormalizeOptions {
    /// All transformations enabled — the matcher's default pipeline.
    fn default() -> Self {
        Self {
            case_fold: true,
            strip_punctuation: true,
            squash_whitespace: true,
            ascii_fold: true,
        }
    }
}

/// Normalises `input` according to `options`. Operations are applied in
/// the order: ASCII folding, case folding, punctuation stripping,
/// whitespace squashing.
pub fn normalize(input: &str, options: NormalizeOptions) -> String {
    let mut s: String = if options.ascii_fold {
        ascii_fold(input)
    } else {
        input.to_owned()
    };
    if options.case_fold {
        s = s.to_lowercase();
    }
    if options.strip_punctuation {
        s = s
            .chars()
            .map(|c| {
                if c.is_alphanumeric() || c.is_whitespace() {
                    c
                } else {
                    ' '
                }
            })
            .collect();
    }
    if options.squash_whitespace {
        s = s.split_whitespace().collect::<Vec<_>>().join(" ");
    }
    s
}

/// Maps accented Latin letters to their ASCII base letter; characters
/// without a mapping pass through unchanged.
///
/// Covers Latin-1 Supplement and the ligatures/strokes that occur in
/// European names (the dominant case in YAGO/DBpedia labels). This is a
/// table-driven fold, not full Unicode NFKD (out of scope offline).
pub fn ascii_fold(input: &str) -> String {
    input.chars().map(fold_char).collect()
}

fn fold_char(c: char) -> char {
    match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' => 'a',
        'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å' | 'Ā' | 'Ă' | 'Ą' => 'A',
        'ç' | 'ć' | 'č' | 'ĉ' => 'c',
        'Ç' | 'Ć' | 'Č' | 'Ĉ' => 'C',
        'ď' | 'đ' => 'd',
        'Ď' | 'Đ' => 'D',
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' => 'e',
        'È' | 'É' | 'Ê' | 'Ë' | 'Ē' | 'Ĕ' | 'Ė' | 'Ę' | 'Ě' => 'E',
        'ĝ' | 'ğ' | 'ġ' | 'ģ' => 'g',
        'Ĝ' | 'Ğ' | 'Ġ' | 'Ģ' => 'G',
        'ĥ' | 'ħ' => 'h',
        'Ĥ' | 'Ħ' => 'H',
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' => 'i',
        'Ì' | 'Í' | 'Î' | 'Ï' | 'Ĩ' | 'Ī' | 'Ĭ' | 'Į' | 'İ' => 'I',
        'ĵ' => 'j',
        'Ĵ' => 'J',
        'ķ' => 'k',
        'Ķ' => 'K',
        'ĺ' | 'ļ' | 'ľ' | 'ł' => 'l',
        'Ĺ' | 'Ļ' | 'Ľ' | 'Ł' => 'L',
        'ñ' | 'ń' | 'ņ' | 'ň' => 'n',
        'Ñ' | 'Ń' | 'Ņ' | 'Ň' => 'N',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ŏ' | 'ő' => 'o',
        'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø' | 'Ō' | 'Ŏ' | 'Ő' => 'O',
        'ŕ' | 'ŗ' | 'ř' => 'r',
        'Ŕ' | 'Ŗ' | 'Ř' => 'R',
        'ś' | 'ŝ' | 'ş' | 'š' => 's',
        'Ś' | 'Ŝ' | 'Ş' | 'Š' => 'S',
        'ţ' | 'ť' | 'ŧ' => 't',
        'Ţ' | 'Ť' | 'Ŧ' => 'T',
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' => 'u',
        'Ù' | 'Ú' | 'Û' | 'Ü' | 'Ũ' | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => 'U',
        'ŵ' => 'w',
        'Ŵ' => 'W',
        'ý' | 'ÿ' | 'ŷ' => 'y',
        'Ý' | 'Ÿ' | 'Ŷ' => 'Y',
        'ź' | 'ż' | 'ž' => 'z',
        'Ź' | 'Ż' | 'Ž' => 'Z',
        'ß' => 's',
        'æ' => 'a',
        'Æ' => 'A',
        'œ' => 'o',
        'Œ' => 'O',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_canonicalises_name_variants() {
        let opts = NormalizeOptions::default();
        assert_eq!(normalize("Frank Sinatra", opts), "frank sinatra");
        assert_eq!(normalize("frank_SINATRA", opts), "frank sinatra");
        assert_eq!(normalize("  Fránk   Sinatra. ", opts), "frank sinatra");
    }

    #[test]
    fn ascii_fold_handles_common_accents() {
        assert_eq!(ascii_fold("Čajkovskij"), "Cajkovskij");
        assert_eq!(ascii_fold("Gödel"), "Godel");
        assert_eq!(ascii_fold("FRANÇAIS"), "FRANCAIS");
        assert_eq!(ascii_fold("Łódź"), "Lodz");
    }

    #[test]
    fn fold_passes_through_unmapped_chars() {
        assert_eq!(ascii_fold("日本語 abc"), "日本語 abc");
    }

    #[test]
    fn options_can_be_disabled_individually() {
        let opts = NormalizeOptions {
            case_fold: false,
            strip_punctuation: false,
            squash_whitespace: false,
            ascii_fold: false,
        };
        assert_eq!(normalize("A-B  C", opts), "A-B  C");

        let only_case = NormalizeOptions {
            case_fold: true,
            ..opts
        };
        assert_eq!(normalize("A-B", only_case), "a-b");
    }

    #[test]
    fn punctuation_becomes_single_space_after_squash() {
        let opts = NormalizeOptions::default();
        assert_eq!(normalize("a,b;c", opts), "a b c");
        assert_eq!(normalize("O'Neil", opts), "o neil");
    }

    #[test]
    fn empty_and_whitespace_only_inputs() {
        let opts = NormalizeOptions::default();
        assert_eq!(normalize("", opts), "");
        assert_eq!(normalize("   \t ", opts), "");
        assert_eq!(normalize("...", opts), "");
    }
}
