//! q-gram profiles and the set/vector coefficients over them.
//!
//! A q-gram profile is the multiset of all length-`q` character windows of
//! a string, with the conventional `#`-padding at both ends so short
//! strings still produce grams.

use std::collections::BTreeMap;

/// Padding character added (q−1 times) to both ends before gram
/// extraction.
pub const PAD: char = '#';

/// A multiset of q-grams with counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QgramProfile {
    q: usize,
    counts: BTreeMap<String, usize>,
    total: usize,
}

impl QgramProfile {
    /// Builds the profile of `s` for gram size `q` (≥ 1).
    ///
    /// # Panics
    /// Panics if `q == 0`.
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q > 0, "gram size must be at least 1");
        let mut padded: Vec<char> = Vec::with_capacity(s.chars().count() + 2 * (q - 1));
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        padded.extend(s.chars());
        padded.extend(std::iter::repeat_n(PAD, q - 1));
        let mut counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut total = 0;
        if padded.len() >= q {
            for window in padded.windows(q) {
                *counts.entry(window.iter().collect()).or_insert(0) += 1;
                total += 1;
            }
        }
        Self { q, counts, total }
    }

    /// The gram size.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct grams.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total gram count (with multiplicity).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of one gram.
    pub fn count(&self, gram: &str) -> usize {
        self.counts.get(gram).copied().unwrap_or(0)
    }

    /// Multiset intersection size with another profile.
    pub fn intersection(&self, other: &Self) -> usize {
        self.counts
            .iter()
            .map(|(g, &c)| c.min(other.count(g)))
            .sum()
    }

    /// Dot product of the two count vectors.
    pub fn dot(&self, other: &Self) -> u64 {
        self.counts
            .iter()
            .map(|(g, &c)| c as u64 * other.count(g) as u64)
            .sum()
    }

    /// Euclidean norm of the count vector.
    pub fn norm(&self) -> f64 {
        (self
            .counts
            .values()
            .map(|&c| (c as u64 * c as u64) as f64)
            .sum::<f64>())
        .sqrt()
    }
}

/// Multiset Jaccard coefficient over q-gram profiles: `|∩| / |∪|`.
pub fn jaccard_qgram(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let inter = pa.intersection(&pb);
    let union = pa.total() + pb.total() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Dice (Sørensen) coefficient: `2|∩| / (|A| + |B|)`.
pub fn dice_qgram(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let denom = pa.total() + pb.total();
    if denom == 0 {
        return 1.0;
    }
    2.0 * pa.intersection(&pb) as f64 / denom as f64
}

/// Overlap coefficient: `|∩| / min(|A|, |B|)`.
pub fn overlap_qgram(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let denom = pa.total().min(pb.total());
    if denom == 0 {
        return 1.0;
    }
    pa.intersection(&pb) as f64 / denom as f64
}

/// Cosine similarity of the gram count vectors.
pub fn cosine_qgram(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let denom = pa.norm() * pb.norm();
    if denom == 0.0 {
        // Both empty → identical; one empty → disjoint.
        return if pa.total() == pb.total() { 1.0 } else { 0.0 };
    }
    pa.dot(&pb) as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_with_padding() {
        // "ab" with q=2 → grams: #a, ab, b#.
        let p = QgramProfile::new("ab", 2);
        assert_eq!(p.total(), 3);
        assert_eq!(p.count("#a"), 1);
        assert_eq!(p.count("ab"), 1);
        assert_eq!(p.count("b#"), 1);
        assert_eq!(p.count("zz"), 0);
    }

    #[test]
    fn profile_of_empty_string() {
        let p = QgramProfile::new("", 2);
        // Padding alone: "##" → one gram.
        assert_eq!(p.total(), 1);
        let p1 = QgramProfile::new("", 1);
        assert_eq!(p1.total(), 0);
    }

    #[test]
    #[should_panic(expected = "gram size")]
    fn zero_q_panics() {
        let _ = QgramProfile::new("abc", 0);
    }

    #[test]
    fn repeated_grams_counted_with_multiplicity() {
        let p = QgramProfile::new("aaaa", 2);
        assert_eq!(p.count("aa"), 3);
        assert_eq!(p.total(), 5);
        assert_eq!(p.distinct(), 3); // #a, aa, a#
    }

    #[test]
    fn identical_strings_score_one() {
        for f in [jaccard_qgram, dice_qgram, overlap_qgram, cosine_qgram] {
            assert!((f("sinatra", "sinatra", 2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_strings_score_zero() {
        for f in [jaccard_qgram, dice_qgram, overlap_qgram, cosine_qgram] {
            assert_eq!(f("aaa", "zzz", 2), 0.0);
        }
    }

    #[test]
    fn coefficient_ordering_jaccard_le_dice() {
        // Dice ≥ Jaccard always.
        for (a, b) in [("frank", "franck"), ("night", "nacht"), ("abc", "abd")] {
            assert!(dice_qgram(a, b, 2) >= jaccard_qgram(a, b, 2) - 1e-12);
        }
    }

    #[test]
    fn overlap_is_one_for_substring_profiles() {
        // q=1, no padding effect: grams of "ab" ⊂ grams of "xaby"? With q=1
        // there is no padding (q-1=0). "ab" grams {a,b}; "aabb" grams
        // {a,a,b,b} — min total is 2, intersection 2.
        assert_eq!(overlap_qgram("ab", "aabb", 1), 1.0);
    }

    #[test]
    fn symmetry_of_all_coefficients() {
        for f in [jaccard_qgram, dice_qgram, overlap_qgram, cosine_qgram] {
            assert!((f("martha", "marhta", 2) - f("marhta", "martha", 2)).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_zero_one() {
        for f in [jaccard_qgram, dice_qgram, overlap_qgram, cosine_qgram] {
            for (a, b) in [("a", "ab"), ("frank", "sinatra"), ("", "x"), ("", "")] {
                let v = f(a, b, 2);
                assert!((0.0..=1.0 + 1e-12).contains(&v), "{a:?} {b:?} → {v}");
            }
        }
    }
}
