//! Token-level similarity: whole-word measures for multi-word literals.

use crate::jaro::jaro_winkler;

/// Splits on whitespace. Inputs are expected to be pre-normalised (see
/// [`crate::normalize()`]), so no further cleanup happens here.
pub fn tokenize(s: &str) -> Vec<&str> {
    s.split_whitespace().collect()
}

/// Jaccard coefficient over the *sets* of tokens.
///
/// Word order and duplicates are ignored — the right behaviour for
/// "Sinatra, Frank" vs "Frank Sinatra".
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: std::collections::BTreeSet<&str> = tokenize(a).into_iter().collect();
    let sb: std::collections::BTreeSet<&str> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Monge–Elkan similarity: for each token of `a`, the best
/// [`jaro_winkler`] match in `b`, averaged; symmetrised by taking the mean
/// of both directions.
///
/// Tolerates both token reordering *and* per-token typos, at O(|a|·|b|)
/// token comparisons.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let directed = |xs: &[&str], ys: &[&str]| -> f64 {
        xs.iter()
            .map(|x| {
                ys.iter()
                    .map(|y| jaro_winkler(x, y))
                    .fold(0.0_f64, f64::max)
            })
            .sum::<f64>()
            / xs.len() as f64
    };
    (directed(&ta, &tb) + directed(&tb, &ta)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_splits_on_whitespace() {
        assert_eq!(tokenize("frank  sinatra"), vec!["frank", "sinatra"]);
        assert!(tokenize("").is_empty());
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn token_jaccard_ignores_order_and_duplicates() {
        assert_eq!(token_jaccard("frank sinatra", "sinatra frank"), 1.0);
        assert_eq!(token_jaccard("a a b", "a b"), 1.0);
        assert_eq!(token_jaccard("a b", "b c"), 1.0 / 3.0);
        assert_eq!(token_jaccard("a", "b"), 0.0);
    }

    #[test]
    fn token_jaccard_empty_conventions() {
        assert_eq!(token_jaccard("", ""), 1.0);
        assert_eq!(token_jaccard("", "a"), 0.0);
    }

    #[test]
    fn monge_elkan_tolerates_reorder_plus_typo() {
        let s = monge_elkan("frank sinatra", "sinatra frnak");
        assert!(s > 0.85, "got {s}");
        assert_eq!(monge_elkan("frank sinatra", "frank sinatra"), 1.0);
    }

    #[test]
    fn monge_elkan_is_symmetric_by_construction() {
        let a = "barack hussein obama";
        let b = "obama barack";
        assert!((monge_elkan(a, b) - monge_elkan(b, a)).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_empty_conventions() {
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("", "x"), 0.0);
        assert_eq!(monge_elkan("x", ""), 0.0);
    }

    #[test]
    fn monge_elkan_bounded() {
        for (a, b) in [("a b c", "x y"), ("one", "two three"), ("q", "q")] {
            let v = monge_elkan(a, b);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
