//! Reference-vector tests: published values from the string-similarity
//! literature and well-known library documentation, plus Unicode and
//! empty-string edge cases. These pin the implementations to the
//! *conventional* definitions so a refactor cannot silently drift (e.g.
//! byte-indexed edit distance, unpadded q-grams, or a different Winkler
//! prefix cap).

use sofya_textsim::{
    cosine_qgram, damerau_osa, dice_qgram, jaccard_qgram, jaro, jaro_winkler, lcs_length,
    lcs_similarity, levenshtein, levenshtein_bounded, levenshtein_similarity, overlap_qgram,
};

fn close(actual: f64, expected: f64) -> bool {
    (actual - expected).abs() < 1e-4
}

// ------------------------------------------------------------ levenshtein

#[test]
fn levenshtein_published_vectors() {
    // Classic textbook pairs (Wagner–Fischer literature, Jurafsky &
    // Martin §2.5 for intention/execution with unit substitution cost).
    for (a, b, d) in [
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("saturday", "sunday", 3),
        ("intention", "execution", 5),
        ("gumbo", "gambol", 2),
        ("book", "back", 2),
        ("", "", 0),
        ("", "abc", 3),
        ("abc", "", 3),
        ("same", "same", 0),
    ] {
        assert_eq!(levenshtein(a, b), d, "levenshtein({a:?}, {b:?})");
        assert_eq!(levenshtein(b, a), d, "symmetry ({a:?}, {b:?})");
    }
}

#[test]
fn levenshtein_counts_scalar_values_not_bytes() {
    // One edit per accented/multi-byte character: a byte-indexed
    // implementation would report 2 (é is two bytes in UTF-8).
    assert_eq!(levenshtein("café", "cafe"), 1);
    assert_eq!(levenshtein("über", "uber"), 1);
    assert_eq!(levenshtein("日本語", "日本"), 1);
    assert_eq!(levenshtein("🦀rust", "rust"), 1);
    assert_eq!(levenshtein("straße", "strasse"), 2); // ß → s, +s
}

#[test]
fn levenshtein_bounded_matches_unbounded() {
    for (a, b) in [
        ("kitten", "sitting"),
        ("saturday", "sunday"),
        ("", "abc"),
        ("café", "cafe"),
    ] {
        let d = levenshtein(a, b);
        assert_eq!(levenshtein_bounded(a, b, d), Some(d));
        assert_eq!(levenshtein_bounded(a, b, d + 1), Some(d));
        if d > 0 {
            assert_eq!(levenshtein_bounded(a, b, d - 1), None);
        }
    }
}

#[test]
fn levenshtein_similarity_normalised_by_longer_string() {
    assert!(close(
        levenshtein_similarity("kitten", "sitting"),
        1.0 - 3.0 / 7.0
    ));
    assert_eq!(levenshtein_similarity("", ""), 1.0);
    assert_eq!(levenshtein_similarity("", "abc"), 0.0);
    assert_eq!(levenshtein_similarity("same", "same"), 1.0);
}

#[test]
fn damerau_osa_published_vectors() {
    // A single adjacent transposition costs 1…
    assert_eq!(damerau_osa("martha", "marhta"), 1);
    assert_eq!(damerau_osa("ab", "ba"), 1);
    // …but the OSA variant never edits a substring twice: CA → ABC is 3
    // under OSA (2 under unrestricted Damerau) — the standard vector
    // distinguishing the two variants.
    assert_eq!(damerau_osa("ca", "abc"), 3);
    // Without transpositions OSA equals Levenshtein.
    assert_eq!(damerau_osa("kitten", "sitting"), 3);
    // Empty-string and Unicode conventions follow Levenshtein.
    assert_eq!(damerau_osa("", "abc"), 3);
    assert_eq!(damerau_osa("日本語", "日語本"), 1);
}

// ------------------------------------------------------- jaro / winkler

#[test]
fn jaro_published_vectors() {
    // Winkler (1990) census-deduplication examples, as reproduced across
    // the record-linkage literature and library test suites.
    for (a, b, expected) in [
        ("MARTHA", "MARHTA", 0.9444),
        ("DIXON", "DICKSONX", 0.7667),
        ("DWAYNE", "DUANE", 0.8222),
        ("JELLYFISH", "SMELLYFISH", 0.8963),
        ("CRATE", "TRACE", 0.7333),
    ] {
        assert!(
            close(jaro(a, b), expected),
            "jaro({a:?}, {b:?}) = {}, want {expected}",
            jaro(a, b)
        );
        assert!(close(jaro(b, a), expected), "symmetry ({a:?}, {b:?})");
    }
}

#[test]
fn jaro_winkler_published_vectors() {
    for (a, b, expected) in [
        ("MARTHA", "MARHTA", 0.9611),
        ("DIXON", "DICKSONX", 0.8133),
        ("DWAYNE", "DUANE", 0.8400),
        // No shared prefix → Winkler boost is zero, JW == Jaro.
        ("JELLYFISH", "SMELLYFISH", 0.8963),
        ("CRATE", "TRACE", 0.7333),
    ] {
        assert!(
            close(jaro_winkler(a, b), expected),
            "jaro_winkler({a:?}, {b:?}) = {}, want {expected}",
            jaro_winkler(a, b)
        );
    }
}

#[test]
fn jaro_winkler_prefix_cap_is_four() {
    // Identical 5-char prefix, then disjoint tails: the boost must use
    // prefix length 4, not 5. With j = jaro(a, b), JW = j + 4·0.1·(1−j).
    let (a, b) = ("abcdeXYZ", "abcdePQR");
    let j = jaro(a, b);
    let jw = jaro_winkler(a, b);
    assert!(close(jw, j + 4.0 * 0.1 * (1.0 - j)), "jw={jw} j={j}");
}

#[test]
fn jaro_empty_and_unicode_edges() {
    assert_eq!(jaro("", ""), 1.0);
    assert_eq!(jaro_winkler("", ""), 1.0);
    assert_eq!(jaro("", "abc"), 0.0);
    assert_eq!(jaro_winkler("abc", ""), 0.0);
    // Scalar-value semantics: one transposed CJK pair behaves like ASCII.
    assert!(close(jaro("日本", "本日"), jaro("ab", "ba")));
    assert_eq!(jaro("🦀", "🦀"), 1.0);
}

// ----------------------------------------------------------------- qgram

#[test]
fn qgram_night_nacht_vectors() {
    // The classic bigram example (Ukkonen 1992 and most q-gram papers),
    // here with `#`-padding: "night" → {#n, ni, ig, gh, ht, t#} and
    // "nacht" → {#n, na, ac, ch, ht, t#}; the profiles share {#n, ht, t#}.
    assert!(close(jaccard_qgram("night", "nacht", 2), 3.0 / 9.0));
    assert!(close(dice_qgram("night", "nacht", 2), 6.0 / 12.0));
    assert!(close(overlap_qgram("night", "nacht", 2), 3.0 / 6.0));
    // All counts are 1 → cosine = 3 / (√6·√6).
    assert!(close(cosine_qgram("night", "nacht", 2), 0.5));
}

#[test]
fn qgram_multiset_counting() {
    // "aaaa" → {#a, aa×3, a#} (5 grams), "aa" → {#a, aa, a#} (3 grams);
    // multiset intersection is 3.
    assert!(close(jaccard_qgram("aaaa", "aa", 2), 3.0 / 5.0));
    assert!(close(dice_qgram("aaaa", "aa", 2), 6.0 / 8.0));
    assert!(close(overlap_qgram("aaaa", "aa", 2), 1.0));
}

#[test]
fn qgram_empty_and_unicode_edges() {
    for f in [jaccard_qgram, dice_qgram, overlap_qgram, cosine_qgram] {
        assert_eq!(f("", "", 2), 1.0, "empty-empty must be identical");
        assert_eq!(f("", "x", 2), 0.0, "empty vs non-empty is disjoint");
        // close() rather than == : cosine accumulates float error.
        assert!(close(f("sofya", "sofya", 3), 1.0));
    }
    // "日本語" → {#日, 日本, 本語, 語#}, "日本" → {#日, 日本, 本#}:
    // 2 shared grams, union 5.
    assert!(close(jaccard_qgram("日本語", "日本", 2), 2.0 / 5.0));
}

// ------------------------------------------------------------------- lcs

#[test]
fn lcs_published_vectors() {
    // CLRS (Introduction to Algorithms, §15.4) dynamic-programming
    // example and the Wikipedia LCS article's pair.
    assert_eq!(lcs_length("AGGTAB", "GXTXAYB"), 4); // GTAB
    assert_eq!(lcs_length("XMJYAUZ", "MZJAWXU"), 4); // MJAU
    assert_eq!(lcs_length("ABCBDAB", "BDCABA"), 4); // BCBA
    assert_eq!(lcs_length("banana", "atana"), 4); // aana
}

#[test]
fn lcs_empty_and_unicode_edges() {
    assert_eq!(lcs_length("", ""), 0);
    assert_eq!(lcs_length("", "abc"), 0);
    assert_eq!(lcs_similarity("", ""), 1.0);
    assert_eq!(lcs_similarity("", "abc"), 0.0);
    // Scalar-value semantics: é counts as one symbol.
    assert_eq!(lcs_length("café", "cafe"), 3);
    assert!(close(lcs_similarity("café", "cafe"), 0.75));
    assert_eq!(lcs_length("日本語", "語日本"), 2);
}

#[test]
fn lcs_tolerates_qualifier_insertions() {
    // The cross-KB label case the measure exists for: added qualifiers
    // keep a high score because LCS only pays for insertions.
    let sim = lcs_similarity("shawshank redemption", "shawshank redemption (1994 film)");
    assert!(sim > 0.6, "got {sim}");
    // With edits on both ends (article dropped, qualifier added) edit
    // distance pays twice while LCS still keeps the common core.
    let (a, b) = (
        "the shawshank redemption",
        "shawshank redemption (1994 film)",
    );
    assert!(lcs_similarity(a, b) > levenshtein_similarity(a, b));
}
