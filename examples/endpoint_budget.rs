//! Aligning under real endpoint constraints: row caps, query budgets,
//! client-side caching.
//!
//! The whole point of on-the-fly alignment is that you *cannot* download
//! the KBs. This example wraps the endpoints with the same limits a
//! public SPARQL service enforces, shows how many queries one relation
//! costs, and what happens when the budget runs out.
//!
//! ```text
//! cargo run --release --example endpoint_budget
//! ```

use sofya::align::{AlignError, Aligner, AlignerConfig};
use sofya::endpoint::{
    CachingEndpoint, EndpointError, InstrumentedEndpoint, LocalEndpoint, QuotaConfig, QuotaEndpoint,
};
use sofya::kbgen::{generate, PairConfig};

fn main() {
    let pair = generate(&PairConfig::small(42));
    let relation = pair.kb1_relations[0].clone();

    // The standard stack: quota over cache over instrumentation over the
    // "remote" store.
    let stack = |store: &sofya::rdf::TripleStore, name: &str, budget: Option<u64>| {
        QuotaEndpoint::new(
            CachingEndpoint::new(InstrumentedEndpoint::new(LocalEndpoint::new(
                name,
                store.clone(),
            ))),
            QuotaConfig {
                max_queries: budget,
                max_rows_per_query: Some(10_000),
            },
        )
    };

    // 1. Generous budget: measure the true cost of one alignment.
    let source = stack(&pair.kb2, "dbp", None);
    let target = stack(&pair.kb1, "yago", None);
    let aligner = Aligner::new(&source, &target, AlignerConfig::paper_defaults(1));
    let rules = aligner.align_relation(&relation).expect("alignment failed");
    let source_counters = source.inner().inner().counters();
    let target_counters = target.inner().inner().counters();
    println!("aligning <{relation}> produced {} rule(s)", rules.len());
    println!(
        "  cost: {} source queries + {} target queries, {} rows transferred",
        source_counters.total_queries(),
        target_counters.total_queries(),
        source_counters.rows_returned() + target_counters.rows_returned(),
    );
    println!(
        "  cache saved {} repeat queries",
        source.inner().hits() + target.inner().hits()
    );
    println!(
        "  (downloading both KBs instead would move {} triples)",
        pair.kb1.len() + pair.kb2.len()
    );

    // 2. A starvation budget: the aligner fails loudly, not wrongly.
    let source = stack(&pair.kb2, "dbp", Some(5));
    let target = stack(&pair.kb1, "yago", Some(5));
    let aligner = Aligner::new(&source, &target, AlignerConfig::paper_defaults(1));
    match aligner.align_relation(&relation) {
        Err(AlignError::Endpoint(EndpointError::QuotaExceeded {
            endpoint,
            max_queries,
            ..
        })) => {
            println!("\nwith a 5-query budget: endpoint '{endpoint}' cut us off after {max_queries} queries — as a real service would");
        }
        other => println!("\nunexpected outcome under starvation budget: {other:?}"),
    }
}
