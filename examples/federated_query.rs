//! The paper's motivation, end to end: *uniformly querying* two KBs that
//! share no schema, by aligning relations during query execution and
//! rewriting the query.
//!
//! A user asks a question against the YAGO-like KB. SOFYA aligns the
//! query's relations on the fly (paying a few endpoint queries, cached
//! for the whole session), rewrites the query for the DBpedia-like KB,
//! and the union of both answer sets beats either KB alone — without
//! downloading anything.
//!
//! ```text
//! cargo run --release --example federated_query
//! ```

use std::collections::BTreeSet;
use std::time::Duration;

use sofya::align::{AlignerConfig, AlignmentSession, QueryRewriter};
use sofya::endpoint::{Endpoint, EndpointExt, LatencyEndpoint, LatencyModel, LocalEndpoint};
use sofya::kbgen::{generate, PairConfig};

fn main() {
    let pair = generate(&PairConfig::small(42));

    // Both KBs sit behind simulated WAN endpoints (20 ms per query).
    let yago = LatencyEndpoint::new(
        LocalEndpoint::new(pair.kb1_name(), pair.kb1.clone()),
        LatencyModel::wan(),
    );
    let dbp = LatencyEndpoint::new(
        LocalEndpoint::new(pair.kb2_name(), pair.kb2.clone()),
        LatencyModel::wan(),
    );

    // Pick an equivalent-pair relation as the user's query target.
    let relation = pair
        .kb1_relations
        .iter()
        .find(|r| r.contains("has"))
        .expect("equivalent relation planted")
        .clone();
    let user_query = format!("SELECT ?x ?y WHERE {{ ?x <{relation}> ?y }}");
    println!("user query against {}:\n  {user_query}\n", pair.kb1_name());

    // 1. Answer on the target KB directly.
    let local_answers = yago.select(&user_query).expect("query failed");
    println!(
        "{} answers from {} alone",
        local_answers.len(),
        pair.kb1_name()
    );

    // 2. Align on the fly and rewrite for the other KB.
    let session = AlignmentSession::new(&dbp, &yago, AlignerConfig::paper_defaults(42));
    let rewriter = QueryRewriter::new(&session, &yago);
    let align_clock = dbp.simulated_time() + yago.simulated_time();
    let rewrite = rewriter.rewrite(&user_query).expect("rewrite failed");
    let align_cost = dbp.simulated_time() + yago.simulated_time() - align_clock;
    println!(
        "\nrewritten for {} (alignment cost ≈ {:?} of simulated WAN time):",
        pair.kb2_name(),
        round(align_cost)
    );
    println!("  {}", rewrite.query);
    for (from, to) in &rewrite.mapped {
        println!("  mapped {from} → {to}");
    }

    // 3. Answers from the other KB, translated back through sameAs.
    let remote_answers = dbp.select(&rewrite.query).expect("rewritten query failed");
    println!(
        "\n{} answers from {}",
        remote_answers.len(),
        pair.kb2_name()
    );

    // 4. Federate: union over sameAs-canonical identifiers.
    let canon = |iri: &str, ep: &dyn Endpoint| -> String {
        sofya::endpoint::helpers::same_as_of(ep, iri, pair.same_as())
            .ok()
            .and_then(|v| v.into_iter().next())
            .unwrap_or_else(|| iri.to_owned())
    };
    let mut federated: BTreeSet<(String, String)> = BTreeSet::new();
    for row in local_answers.rows() {
        if let (Some(x), Some(y)) = (&row[0], &row[1]) {
            federated.insert((x.to_string(), y.to_string()));
        }
    }
    let before = federated.len();
    for row in remote_answers.rows() {
        if let (Some(x), Some(y)) = (row[0].as_ref(), row[1].as_ref()) {
            let (Some(x), Some(y)) = (x.as_iri(), y.as_iri()) else {
                continue;
            };
            federated.insert((
                format!("<{}>", canon(x, &dbp)),
                format!("<{}>", canon(y, &dbp)),
            ));
        }
    }
    println!(
        "\nfederated answer set: {} pairs ({} new beyond {} — facts {} knows but {} lost to incompleteness)",
        federated.len(),
        federated.len() - before,
        pair.kb1_name(),
        pair.kb2_name(),
        pair.kb1_name(),
    );

    // A second query over the same relation reuses the session cache.
    let clock = dbp.simulated_time() + yago.simulated_time();
    let _ = rewriter
        .rewrite(&format!("SELECT ?x WHERE {{ ?x <{relation}> ?y }}"))
        .expect("rewrite failed");
    let second_cost = dbp.simulated_time() + yago.simulated_time() - clock - Duration::ZERO;
    println!(
        "second query over the same relation: alignment cost {:?} (cached)",
        round(second_cost)
    );
}

fn round(d: Duration) -> Duration {
    Duration::from_millis(d.as_millis() as u64)
}
