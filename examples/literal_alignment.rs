//! Aligning entity–literal relations with string similarity.
//!
//! `sameAs` links connect *entities*; literal values ("Frank Sinatra" vs
//! "frank_sinatra" vs "Sinatra, Frank") carry no links, so §2.2 of the
//! paper matches them with string-similarity functions. This example
//! aligns two differently-formatted name relations and shows the
//! similarity machinery underneath.
//!
//! ```text
//! cargo run --release --example literal_alignment
//! ```

use sofya::align::{Aligner, AlignerConfig};
use sofya::endpoint::LocalEndpoint;
use sofya::rdf::{Term, TripleStore};
use sofya::textsim::{jaro_winkler, levenshtein, LiteralMatcher};

const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";

fn main() {
    // The same people, named differently per KB.
    let people = [
        ("Frank Sinatra", "frank_sinatra"),
        ("Ella Fitzgerald", "Fitzgerald, Ella"),
        ("Kurt Gödel", "Kurt Godel"),
        ("Ludwig van Beethoven", "BEETHOVEN, LUDWIG VAN"),
        ("Dean Martin", "Dean Martìn"),
        ("Billie Holiday", "Billie Holliday"),
    ];

    let mut yago = TripleStore::new();
    let mut dbp = TripleStore::new();
    for (i, (y_name, d_name)) in people.iter().enumerate() {
        let (py, pd) = (format!("y:p{i}"), format!("d:P{i}"));
        yago.insert_terms(
            &Term::iri(&py),
            &Term::iri("y:label"),
            &Term::literal(*y_name),
        );
        dbp.insert_terms(
            &Term::iri(&pd),
            &Term::iri("d:name"),
            &Term::literal(*d_name),
        );
        yago.insert_terms(&Term::iri(&py), &Term::iri(SAME_AS), &Term::iri(&pd));
        dbp.insert_terms(&Term::iri(&pd), &Term::iri(SAME_AS), &Term::iri(&py));
    }

    // Peek at the similarity layer first.
    println!("surface-form similarity (hybrid matcher after normalisation):");
    let matcher = LiteralMatcher::default();
    for (y_name, d_name) in &people {
        println!(
            "  {:<22} vs {:<24} sim {:.3}  (raw lev {}, raw jw {:.2})",
            y_name,
            d_name,
            matcher.similarity(y_name, d_name),
            levenshtein(y_name, d_name),
            jaro_winkler(y_name, d_name),
        );
    }

    // Then align: SOFYA discovers d:name as a candidate for y:label and
    // validates it through the literal path.
    let source = LocalEndpoint::new("dbp", dbp);
    let target = LocalEndpoint::new("yago", yago);
    let aligner = Aligner::new(&source, &target, AlignerConfig::paper_defaults(3));
    let rules = aligner.align_relation("y:label").expect("alignment failed");

    println!("\nmined literal rules:");
    for rule in &rules {
        println!("  {rule}   (literal path: {})", rule.literal);
    }
    assert!(
        rules.iter().any(|r| r.premise == "d:name"),
        "d:name should align to y:label"
    );
}
