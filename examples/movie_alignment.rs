//! The paper's movie example, end to end, on hand-written data.
//!
//! K (a YAGO-like KB) has `directedBy`; K' (a DBpedia-like KB) has
//! `hasDirector` (truly equivalent) and `hasProducer` (merely
//! overlapping: directors often produce their own movies). A naive
//! instance-based miner concludes `hasProducer ⇒ directedBy`; SOFYA's
//! Unbiased Sample Extraction finds a movie whose producer is *not* its
//! director and prunes the rule.
//!
//! ```text
//! cargo run --release --example movie_alignment
//! ```

use sofya::align::{Aligner, AlignerConfig};
use sofya::endpoint::LocalEndpoint;
use sofya::rdf::parse_ntriples;

const SAME_AS: &str = "http://www.w3.org/2002/07/owl#sameAs";

fn yago_triples() -> String {
    let mut nt = String::new();
    for i in 0..12 {
        nt.push_str(&format!("<y:m{i}> <y:directedBy> <y:dir{i}> .\n"));
        nt.push_str(&format!("<y:m{i}> <{SAME_AS}> <d:M{i}> .\n"));
        nt.push_str(&format!("<y:dir{i}> <{SAME_AS}> <d:Dir{i}> .\n"));
        nt.push_str(&format!("<y:pr{i}> <{SAME_AS}> <d:Pr{i}> .\n"));
    }
    nt
}

fn dbp_triples() -> String {
    let mut nt = String::new();
    for i in 0..12 {
        nt.push_str(&format!("<d:M{i}> <d:hasDirector> <d:Dir{i}> .\n"));
        // Two thirds of the directors also produce (the trap)…
        if i % 3 != 0 {
            nt.push_str(&format!("<d:M{i}> <d:hasProducer> <d:Dir{i}> .\n"));
        }
        // …and every movie also has a dedicated producer who directs
        // nothing — SOFYA's contradiction material.
        nt.push_str(&format!("<d:M{i}> <d:hasProducer> <d:Pr{i}> .\n"));
        nt.push_str(&format!("<d:M{i}> <{SAME_AS}> <y:m{i}> .\n"));
        nt.push_str(&format!("<d:Dir{i}> <{SAME_AS}> <y:dir{i}> .\n"));
        nt.push_str(&format!("<d:Pr{i}> <{SAME_AS}> <y:pr{i}> .\n"));
    }
    nt
}

fn main() {
    let yago = parse_ntriples(&yago_triples()).expect("valid N-Triples");
    let dbp = parse_ntriples(&dbp_triples()).expect("valid N-Triples");
    println!("K  (yago): {} triples — relations: directedBy", yago.len());
    println!(
        "K' (dbp):  {} triples — relations: hasDirector, hasProducer",
        dbp.len()
    );

    let source = LocalEndpoint::new("dbp", dbp);
    let target = LocalEndpoint::new("yago", yago);

    println!("\n— Simple Sample Extraction (pcaconf, τ > 0.3) —");
    let baseline = Aligner::new(&source, &target, AlignerConfig::baseline_pca(7));
    for rule in baseline
        .align_relation("y:directedBy")
        .expect("alignment failed")
    {
        let verdict = if rule.premise.contains("Producer") {
            "WRONG (overlap)"
        } else {
            "correct"
        };
        println!("  {rule}   ← {verdict}");
    }

    println!("\n— Unbiased Sample Extraction (UBS) —");
    let ubs = Aligner::new(&source, &target, AlignerConfig::paper_defaults(7));
    for rule in ubs
        .align_relation("y:directedBy")
        .expect("alignment failed")
    {
        println!("  {rule}   ← survives contrastive checking");
    }
    println!("\nUBS sampled movies whose producer differs from their director;");
    println!("one such contradiction was enough to prune hasProducer ⇒ directedBy.");
}
