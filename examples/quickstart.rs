//! Quickstart: generate a synthetic KB pair, align every relation of the
//! target KB on the fly, and check the result against the ground truth.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sofya::align::{Aligner, AlignerConfig};
use sofya::endpoint::LocalEndpoint;
use sofya::eval::evaluate_rules;
use sofya::kbgen::{generate, PairConfig};

fn main() {
    // 1. A small KB pair with known gold alignment (stand-in for two live
    //    SPARQL endpoints such as YAGO and DBpedia).
    let pair = generate(&PairConfig::small(42));
    println!(
        "generated '{}' ({} triples, {} relations) and '{}' ({} triples, {} relations)",
        pair.kb1_name(),
        pair.kb1.len(),
        pair.kb1_relations.len(),
        pair.kb2_name(),
        pair.kb2.len(),
        pair.kb2_relations.len(),
    );

    // 2. Wrap the stores as endpoints — from here on, SOFYA only speaks
    //    SPARQL.
    let source = LocalEndpoint::new(pair.kb2_name(), pair.kb2.clone()); // K'
    let target = LocalEndpoint::new(pair.kb1_name(), pair.kb1.clone()); // K

    // 3. Align with the paper's configuration: 10 sample subjects,
    //    pcaconf, Unbiased Sample Extraction, τ = 0.3.
    let aligner = Aligner::new(&source, &target, AlignerConfig::paper_defaults(42));
    let rules = aligner.align_all().expect("alignment failed");

    println!(
        "\nmined {} subsumption rules (source ⇒ target):",
        rules.len()
    );
    for rule in rules.iter().take(10) {
        println!("  {rule}");
    }
    if rules.len() > 10 {
        println!("  … and {} more", rules.len() - 10);
    }

    // 4. Score against the generator's world-level gold.
    let metrics = evaluate_rules(&rules, &pair.gold, pair.kb2_name(), pair.kb1_name());
    println!("\nagainst ground truth: {metrics}");
}
