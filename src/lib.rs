//! # sofya
//!
//! Facade crate re-exporting the whole SOFYA workspace: an implementation
//! of *"SOFYA: Semantic on-the-fly Relation Alignment"* (Koutraki, Preda,
//! Vodislav — EDBT 2016) together with the substrates it runs on.
//!
//! Most users want [`sofya_core`] (the aligner), [`sofya_kbgen`] (synthetic
//! KB pairs with ground truth), and [`sofya_eval`] (Table-1 style
//! experiments). See the `examples/` directory for runnable walkthroughs.

#![forbid(unsafe_code)]

pub use sofya_core as align;
pub use sofya_durability as durability;
pub use sofya_endpoint as endpoint;
pub use sofya_eval as eval;
pub use sofya_kbgen as kbgen;
pub use sofya_net as net;
pub use sofya_rdf as rdf;
pub use sofya_service as service;
pub use sofya_sparql as sparql;
pub use sofya_textsim as textsim;
