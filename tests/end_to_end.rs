//! End-to-end pipeline tests on generated pairs: generation → endpoints
//! → alignment → evaluation, asserting the paper's qualitative results.

use sofya::align::AlignerConfig;
use sofya::eval::{align_direction, evaluate_rules, run_table1};
use sofya::kbgen::{generate, PairConfig};

#[test]
fn table1_shape_holds_on_small_scale() {
    let pair = generate(&PairConfig::small(1001));
    let table = run_table1(&pair, 1001, 10, 4).unwrap();
    let pca = &table.rows[0];
    let cwa = &table.rows[1];
    let ubs = &table.rows[2];

    for (label, dir_ubs, dir_pca, dir_cwa) in [
        ("kb2⊂kb1", &ubs.kb2_in_kb1, &pca.kb2_in_kb1, &cwa.kb2_in_kb1),
        ("kb1⊂kb2", &ubs.kb1_in_kb2, &pca.kb1_in_kb2, &cwa.kb1_in_kb2),
    ] {
        // UBS precision beats both baselines by a wide margin.
        assert!(
            dir_ubs.precision() >= dir_pca.precision() + 0.1,
            "{label}: UBS {dir_ubs} vs pca-SSE {dir_pca}"
        );
        assert!(
            dir_ubs.precision() >= dir_cwa.precision() + 0.1,
            "{label}: UBS {dir_ubs} vs cwa-SSE {dir_cwa}"
        );
        // And stays high in absolute terms without destroying recall.
        assert!(dir_ubs.precision() >= 0.75, "{label}: {dir_ubs}");
        assert!(dir_ubs.recall() >= 0.5, "{label}: {dir_ubs}");
        // The baselines find things too (their problem is precision).
        assert!(dir_pca.recall() >= 0.7, "{label}: {dir_pca}");
    }
}

#[test]
fn alignment_is_reproducible_across_runs_and_threads() {
    let pair = generate(&PairConfig::tiny(77));
    let config = AlignerConfig::paper_defaults(77);
    let a = align_direction(&pair.kb2, &pair.kb1, "b", "a", &config, 1).unwrap();
    let b = align_direction(&pair.kb2, &pair.kb1, "b", "a", &config, 8).unwrap();
    assert_eq!(a.rules, b.rules);
}

#[test]
fn different_seeds_still_satisfy_the_shape() {
    // Guard against seed-luck: the UBS > SSE gap must hold for several
    // seeds, not just the default.
    for seed in [5, 99, 12345] {
        let pair = generate(&PairConfig::tiny(seed));
        let ubs = align_direction(
            &pair.kb2,
            &pair.kb1,
            pair.kb2_name(),
            pair.kb1_name(),
            &AlignerConfig::paper_defaults(seed),
            4,
        )
        .unwrap();
        let sse = align_direction(
            &pair.kb2,
            &pair.kb1,
            pair.kb2_name(),
            pair.kb1_name(),
            &AlignerConfig::baseline_pca(seed),
            4,
        )
        .unwrap();
        let m_ubs = evaluate_rules(&ubs.rules, &pair.gold, pair.kb2_name(), pair.kb1_name());
        let m_sse = evaluate_rules(&sse.rules, &pair.gold, pair.kb2_name(), pair.kb1_name());
        assert!(
            m_ubs.precision() >= m_sse.precision(),
            "seed {seed}: UBS {m_ubs} vs SSE {m_sse}"
        );
        assert!(m_ubs.true_positives > 0, "seed {seed}: UBS found nothing");
    }
}

#[test]
fn ubs_needs_fewer_rows_than_a_dump() {
    // "Works with few queries": rows transferred by a full alignment run
    // must be well below the size of the KBs themselves.
    let pair = generate(&PairConfig::small(31));
    let out = align_direction(
        &pair.kb2,
        &pair.kb1,
        pair.kb2_name(),
        pair.kb1_name(),
        &AlignerConfig::paper_defaults(31),
        4,
    )
    .unwrap();
    let dump_size = (pair.kb1.len() + pair.kb2.len()) as u64;
    assert!(
        out.rows_transferred < dump_size * 3,
        "rows {} vs dump {dump_size}",
        out.rows_transferred
    );
    assert!(out.queries_per_relation() < 500.0);
}

#[test]
fn inverse_relations_align_once_materialized() {
    // §2.2: "we assumed that the inverse relations have been added to the
    // two KBs. This is why we only consider direct relations." With
    // materialisation on, rules over inverse predicates are mined as
    // ordinary direct rules.
    let mut cfg = PairConfig::tiny(81);
    cfg.materialize_inverses = true;
    let pair = generate(&cfg);
    let out = align_direction(
        &pair.kb2,
        &pair.kb1,
        pair.kb2_name(),
        pair.kb1_name(),
        &AlignerConfig::paper_defaults(81),
        4,
    )
    .unwrap();
    let inverse_rules: Vec<_> = out
        .rules
        .iter()
        .filter(|r| sofya::rdf::is_inverse_iri(&r.premise))
        .collect();
    assert!(!inverse_rules.is_empty(), "no inverse rule mined");
    let m = evaluate_rules(&out.rules, &pair.gold, pair.kb2_name(), pair.kb1_name());
    assert!(m.precision() >= 0.7, "{m}");
}

#[test]
fn literal_relations_align_through_the_pipeline() {
    let pair = generate(&PairConfig::small(55));
    let config = AlignerConfig::paper_defaults(55);
    let out = align_direction(
        &pair.kb2,
        &pair.kb1,
        pair.kb2_name(),
        pair.kb1_name(),
        &config,
        4,
    )
    .unwrap();
    let literal_rules: Vec<_> = out.rules.iter().filter(|r| r.literal).collect();
    assert!(!literal_rules.is_empty(), "no literal rule mined at all");
    for rule in &literal_rules {
        assert!(
            pair.gold.is_subsumption(&rule.premise, &rule.conclusion),
            "false literal rule {rule}"
        );
    }
}
