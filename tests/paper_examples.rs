//! The paper's two §2.2 examples, encoded literally and run through the
//! full stack: N-Triples → store → SPARQL endpoint → aligner.

use sofya::align::{equivalences, Aligner, AlignerConfig};
use sofya::endpoint::LocalEndpoint;
use sofya::rdf::parse_ntriples;

const SA: &str = "http://www.w3.org/2002/07/owl#sameAs";

/// Builds the composer/writer KBs: K has `creatorOf` (coarse), K' has
/// `composerOf` and `writerOf` (fine). Every person creates one song and
/// one book, so `creatorOf ⇒ composerOf` looks half-true to PCA.
fn creator_kbs() -> (LocalEndpoint, LocalEndpoint) {
    let mut yago_nt = String::new();
    let mut dbp_nt = String::new();
    for i in 0..10 {
        yago_nt.push_str(&format!("<y:p{i}> <y:creatorOf> <y:song{i}> .\n"));
        yago_nt.push_str(&format!("<y:p{i}> <y:creatorOf> <y:book{i}> .\n"));
        dbp_nt.push_str(&format!("<d:P{i}> <d:composerOf> <d:Song{i}> .\n"));
        dbp_nt.push_str(&format!("<d:P{i}> <d:writerOf> <d:Book{i}> .\n"));
        for (a, b) in [
            (format!("y:p{i}"), format!("d:P{i}")),
            (format!("y:song{i}"), format!("d:Song{i}")),
            (format!("y:book{i}"), format!("d:Book{i}")),
        ] {
            yago_nt.push_str(&format!("<{a}> <{SA}> <{b}> .\n"));
            dbp_nt.push_str(&format!("<{b}> <{SA}> <{a}> .\n"));
        }
    }
    (
        LocalEndpoint::new("dbp", parse_ntriples(&dbp_nt).unwrap()),
        LocalEndpoint::new("yago", parse_ntriples(&yago_nt).unwrap()),
    )
}

#[test]
fn composer_of_implies_creator_of_but_not_conversely() {
    let (dbp, yago) = creator_kbs();
    // Forward direction: true subsumptions survive UBS.
    let fwd = Aligner::new(&dbp, &yago, AlignerConfig::paper_defaults(1));
    let rules = fwd.align_relation("y:creatorOf").unwrap();
    let premises: Vec<&str> = rules.iter().map(|r| r.premise.as_str()).collect();
    assert!(premises.contains(&"d:composerOf"));
    assert!(premises.contains(&"d:writerOf"));

    // Reverse direction: creatorOf ⇒ composerOf must be pruned by UBS…
    let bwd = Aligner::new(&yago, &dbp, AlignerConfig::paper_defaults(1));
    let rules = bwd.align_relation("d:composerOf").unwrap();
    assert!(
        rules.iter().all(|r| r.premise != "y:creatorOf"),
        "{rules:?}"
    );

    // …whereas the SSE baseline falls for it.
    let sse = Aligner::new(&yago, &dbp, AlignerConfig::baseline_pca(1));
    let rules = sse.align_relation("d:composerOf").unwrap();
    assert!(
        rules.iter().any(|r| r.premise == "y:creatorOf"),
        "{rules:?}"
    );
}

#[test]
fn no_false_equivalence_for_subsumption_families() {
    let (dbp, yago) = creator_kbs();
    let fwd = Aligner::new(&dbp, &yago, AlignerConfig::paper_defaults(2))
        .align_all()
        .unwrap();
    let bwd = Aligner::new(&yago, &dbp, AlignerConfig::paper_defaults(2))
        .align_all()
        .unwrap();
    let eqs = equivalences(&fwd, &bwd);
    assert!(
        eqs.is_empty(),
        "composerOf/writerOf are strictly subsumed, never equivalent: {eqs:?}"
    );
}

/// Director/producer: the overlap trap from §2.2.
fn movie_kbs() -> (LocalEndpoint, LocalEndpoint) {
    let mut yago_nt = String::new();
    let mut dbp_nt = String::new();
    for i in 0..12 {
        yago_nt.push_str(&format!("<y:m{i}> <y:directedBy> <y:dir{i}> .\n"));
        dbp_nt.push_str(&format!("<d:M{i}> <d:hasDirector> <d:Dir{i}> .\n"));
        if i % 3 != 0 {
            dbp_nt.push_str(&format!("<d:M{i}> <d:hasProducer> <d:Dir{i}> .\n"));
        }
        dbp_nt.push_str(&format!("<d:M{i}> <d:hasProducer> <d:Pr{i}> .\n"));
        for (a, b) in [
            (format!("y:m{i}"), format!("d:M{i}")),
            (format!("y:dir{i}"), format!("d:Dir{i}")),
            (format!("y:pr{i}"), format!("d:Pr{i}")),
        ] {
            yago_nt.push_str(&format!("<{a}> <{SA}> <{b}> .\n"));
            dbp_nt.push_str(&format!("<{b}> <{SA}> <{a}> .\n"));
        }
    }
    (
        LocalEndpoint::new("dbp", parse_ntriples(&dbp_nt).unwrap()),
        LocalEndpoint::new("yago", parse_ntriples(&yago_nt).unwrap()),
    )
}

#[test]
fn producer_overlap_is_pruned_only_by_ubs() {
    let (dbp, yago) = movie_kbs();
    let sse = Aligner::new(&dbp, &yago, AlignerConfig::baseline_pca(3));
    let sse_rules = sse.align_relation("y:directedBy").unwrap();
    assert!(sse_rules.iter().any(|r| r.premise == "d:hasProducer"));

    let ubs = Aligner::new(&dbp, &yago, AlignerConfig::paper_defaults(3));
    let ubs_rules = ubs.align_relation("y:directedBy").unwrap();
    let premises: Vec<&str> = ubs_rules.iter().map(|r| r.premise.as_str()).collect();
    assert_eq!(premises, vec!["d:hasDirector"]);
}

#[test]
fn director_equivalence_is_mined_across_directions() {
    let (dbp, yago) = movie_kbs();
    let fwd = Aligner::new(&dbp, &yago, AlignerConfig::paper_defaults(4))
        .align_all()
        .unwrap();
    let bwd = Aligner::new(&yago, &dbp, AlignerConfig::paper_defaults(4))
        .align_all()
        .unwrap();
    let eqs = equivalences(&fwd, &bwd);
    assert_eq!(eqs.len(), 1);
    assert_eq!(eqs[0].source, "d:hasDirector");
    assert_eq!(eqs[0].target, "y:directedBy");
    assert!(eqs[0].min_confidence() > 0.9);
}
