//! Property-based tests (proptest) on the workspace's core invariants.

use proptest::prelude::*;
use sofya::align::{cwaconf, pcaconf, PairEvidence, SampleEvidence};
use sofya::rdf::{parse_ntriples, write_ntriples, Term, TriplePattern, TripleStore};
use sofya::textsim::{
    damerau_osa, jaro, jaro_winkler, levenshtein, levenshtein_bounded, normalize, token_jaccard,
    NormalizeOptions,
};

// ---------------------------------------------------------------- textsim

proptest! {
    #[test]
    fn levenshtein_is_a_metric(a in ".{0,24}", b in ".{0,24}", c in ".{0,24}") {
        let ab = levenshtein(&a, &b);
        let ba = levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);                        // symmetry
        prop_assert_eq!(levenshtein(&a, &a), 0);        // identity
        let ac = levenshtein(&a, &c);
        let cb = levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb);                    // triangle inequality
    }

    #[test]
    fn levenshtein_bounded_agrees(a in ".{0,16}", b in ".{0,16}", bound in 0usize..20) {
        let d = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, bound) {
            Some(found) => {
                prop_assert_eq!(found, d);
                prop_assert!(d <= bound);
            }
            None => prop_assert!(d > bound),
        }
    }

    #[test]
    fn damerau_never_exceeds_levenshtein(a in ".{0,16}", b in ".{0,16}") {
        prop_assert!(damerau_osa(&a, &b) <= levenshtein(&a, &b));
    }

    #[test]
    fn jaro_family_is_bounded_and_symmetric(a in ".{0,24}", b in ".{0,24}") {
        for f in [jaro, jaro_winkler] {
            let ab = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ab), "out of bounds: {}", ab);
            prop_assert!((ab - f(&b, &a)).abs() < 1e-9);
        }
        prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
        prop_assert_eq!(jaro(&a, &a), 1.0);
    }

    #[test]
    fn token_jaccard_bounded_and_order_blind(a in "[a-c ]{0,20}", b in "[a-c ]{0,20}") {
        let v = token_jaccard(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((v - token_jaccard(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn normalize_is_idempotent(s in ".{0,40}") {
        let opts = NormalizeOptions::default();
        let once = normalize(&s, opts);
        let twice = normalize(&once, opts);
        prop_assert_eq!(once, twice);
    }
}

// ------------------------------------------------------------- confidence

proptest! {
    #[test]
    fn cwa_never_exceeds_pca(pos in 0usize..20, neg in 0usize..20, unk in 0usize..20) {
        let mut pairs = Vec::new();
        pairs.extend(std::iter::repeat_n(PairEvidence::positive(), pos));
        pairs.extend(std::iter::repeat_n(PairEvidence::pca_negative(), neg));
        pairs.extend(std::iter::repeat_n(PairEvidence::unknown(), unk));
        let e = SampleEvidence { pairs, subjects: pos + neg + unk };
        let (c, p) = (cwaconf(&e), pcaconf(&e));
        prop_assert!(c <= p + 1e-12, "cwa {} > pca {}", c, p);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((0.0..=1.0).contains(&p));
    }
}

// -------------------------------------------------------------------- rdf

/// Strategy for a lexical form without exotic control characters (the
/// escaper handles them, but the generator keeps shrink output readable).
fn literal_text() -> impl Strategy<Value = String> {
    "[ -~]{0,24}"
}

fn iri_text() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9:/._-]{0,24}"
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        iri_text().prop_map(Term::iri),
        literal_text().prop_map(Term::literal),
        (literal_text(), "[a-z]{2}").prop_map(|(l, t)| Term::lang_literal(l, t)),
        (literal_text(), iri_text()).prop_map(|(l, d)| Term::typed_literal(l, d)),
    ]
}

proptest! {
    #[test]
    fn ntriples_round_trip(
        facts in proptest::collection::vec((iri_text(), iri_text(), term_strategy()), 0..20)
    ) {
        let mut store = TripleStore::new();
        for (s, p, o) in &facts {
            store.insert_terms(&Term::iri(s.clone()), &Term::iri(p.clone()), o);
        }
        let text = write_ntriples(&store);
        let reparsed = parse_ntriples(&text).unwrap();
        prop_assert_eq!(store.len(), reparsed.len());
        // Set equality through canonical text form.
        let canon = |st: &TripleStore| {
            let mut v: Vec<String> = st
                .iter()
                .map(|t| {
                    let (s, p, o) = st.resolve(t);
                    format!("{s} {p} {o}")
                })
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(canon(&store), canon(&reparsed));
    }

    #[test]
    fn store_indexes_agree_on_every_pattern(
        facts in proptest::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..60),
        probe in (0u32..12, 0u32..4, 0u32..12),
    ) {
        let mut store = TripleStore::new();
        for (s, p, o) in &facts {
            store.insert_terms(
                &Term::iri(format!("e{s}")),
                &Term::iri(format!("p{p}")),
                &Term::iri(format!("e{o}")),
            );
        }
        let lookup = |n: String| store.dict().lookup_iri(&n);
        let (s, p, o) = (
            lookup(format!("e{}", probe.0)),
            lookup(format!("p{}", probe.1)),
            lookup(format!("e{}", probe.2)),
        );
        let all: Vec<_> = store.iter().collect();
        // Every combination of bound/unbound positions must agree with
        // brute-force filtering of the full SPO scan.
        for pattern in [
            TriplePattern { s, p: None, o: None },
            TriplePattern { s: None, p, o: None },
            TriplePattern { s: None, p: None, o },
            TriplePattern { s, p, o: None },
            TriplePattern { s, p: None, o },
            TriplePattern { s: None, p, o },
            TriplePattern { s, p, o },
        ] {
            // Unbound-by-absence: if the probe term was never interned the
            // pattern can't match anything.
            if (pattern.s.is_none() && s.is_none() && probe.0 > 0)
                || (pattern.o.is_none() && o.is_none() && probe.2 > 0)
            {
                // pattern genuinely unconstrained in that position; fine.
            }
            let scanned: Vec<_> = store.scan(pattern).collect();
            let brute: Vec<_> = all.iter().copied().filter(|t| pattern.matches(t)).collect();
            let mut a = scanned.clone();
            let mut b = brute.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "pattern {:?}", pattern);
        }
    }

    #[test]
    fn dictionary_round_trip(terms in proptest::collection::vec(term_strategy(), 0..40)) {
        let mut store = TripleStore::new();
        let ids: Vec<_> = terms.iter().map(|t| store.intern(t)).collect();
        for (term, id) in terms.iter().zip(&ids) {
            prop_assert_eq!(store.dict().resolve(*id), term);
            prop_assert_eq!(store.dict().lookup(term), Some(*id));
        }
    }
}
