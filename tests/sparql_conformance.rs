//! Cross-checks of the SPARQL engine against brute-force evaluation on
//! generated data: whatever the planner decides, results must equal a
//! naive filter over all triples.

use sofya::kbgen::{generate, PairConfig};
use sofya::rdf::{Term, TripleStore};
use sofya::sparql::{execute, execute_ask};

fn store() -> TripleStore {
    generate(&PairConfig::tiny(9)).kb2
}

/// Naive evaluation of `?x <p> ?y`: all (s, o) pairs of predicate p.
fn facts_of(store: &TripleStore, p: &str) -> Vec<(Term, Term)> {
    let Some(p) = store.dict().lookup_iri(p) else {
        return Vec::new();
    };
    store
        .triples_with_predicate(p)
        .map(|t| {
            let (s, _, o) = store.resolve(t);
            (s.clone(), o.clone())
        })
        .collect()
}

fn a_predicate(store: &TripleStore) -> String {
    let preds = store.predicates();
    // Pick a content predicate (not sameAs) deterministically.
    preds
        .iter()
        .map(|&p| store.dict().resolve(p).as_iri().unwrap().to_owned())
        .find(|iri| !iri.contains("sameAs"))
        .expect("store has content predicates")
}

#[test]
fn single_pattern_matches_brute_force() {
    let s = store();
    let p = a_predicate(&s);
    let rs = execute(&s, &format!("SELECT ?x ?y WHERE {{ ?x <{p}> ?y }}")).unwrap();
    let mut engine: Vec<(Term, Term)> = rs
        .rows()
        .iter()
        .map(|r| (r[0].clone().unwrap(), r[1].clone().unwrap()))
        .collect();
    let mut brute = facts_of(&s, &p);
    engine.sort();
    brute.sort();
    assert_eq!(engine, brute);
}

#[test]
fn join_matches_nested_loop_over_facts() {
    let s = store();
    let p = a_predicate(&s);
    // ?x <p> ?y . ?y ?q ?z — brute force: for every (x,y) of p, every
    // triple with subject y.
    let rs = execute(
        &s,
        &format!("SELECT ?x ?y ?z WHERE {{ ?x <{p}> ?y . ?y ?q ?z }}"),
    )
    .unwrap();
    let mut brute = Vec::new();
    for (x, y) in facts_of(&s, &p) {
        if let Some(y_id) = s.dict().lookup(&y) {
            for t in s.triples_with_subject(y_id) {
                let (_, _, z) = s.resolve(t);
                brute.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    let mut engine: Vec<(Term, Term, Term)> = rs
        .rows()
        .iter()
        .map(|r| {
            (
                r[0].clone().unwrap(),
                r[1].clone().unwrap(),
                r[2].clone().unwrap(),
            )
        })
        .collect();
    engine.sort();
    brute.sort();
    assert_eq!(engine, brute);
}

#[test]
fn not_exists_complements_exists() {
    let s = store();
    let p = a_predicate(&s);
    let all = execute(&s, &format!("SELECT ?x WHERE {{ ?x <{p}> ?y }}"))
        .unwrap()
        .len();
    let with = execute(
        &s,
        &format!("SELECT ?x WHERE {{ ?x <{p}> ?y FILTER EXISTS {{ ?x ?q ?z }} }}"),
    )
    .unwrap()
    .len();
    let without = execute(
        &s,
        &format!("SELECT ?x WHERE {{ ?x <{p}> ?y FILTER NOT EXISTS {{ ?x ?q ?z }} }}"),
    )
    .unwrap()
    .len();
    // Every subject of p trivially has some triple (p itself), so EXISTS
    // keeps everything and NOT EXISTS keeps nothing.
    assert_eq!(with, all);
    assert_eq!(without, 0);
}

#[test]
fn count_equals_row_count() {
    let s = store();
    let p = a_predicate(&s);
    let rows = execute(&s, &format!("SELECT ?x ?y WHERE {{ ?x <{p}> ?y }}"))
        .unwrap()
        .len();
    let count = execute(
        &s,
        &format!("SELECT (COUNT(*) AS ?n) WHERE {{ ?x <{p}> ?y }}"),
    )
    .unwrap()
    .single_integer()
    .unwrap();
    assert_eq!(rows as i64, count);
}

#[test]
fn distinct_never_increases_and_dedupes() {
    let s = store();
    let p = a_predicate(&s);
    let plain = execute(&s, &format!("SELECT ?x WHERE {{ ?x <{p}> ?y }}")).unwrap();
    let distinct = execute(&s, &format!("SELECT DISTINCT ?x WHERE {{ ?x <{p}> ?y }}")).unwrap();
    assert!(distinct.len() <= plain.len());
    let mut seen = std::collections::BTreeSet::new();
    for row in distinct.rows() {
        assert!(
            seen.insert(format!("{:?}", row)),
            "duplicate row after DISTINCT"
        );
    }
}

#[test]
fn limit_offset_slices_ordered_results() {
    let s = store();
    let p = a_predicate(&s);
    let all = execute(
        &s,
        &format!("SELECT ?x ?y WHERE {{ ?x <{p}> ?y }} ORDER BY ?x ?y"),
    )
    .unwrap();
    for (limit, offset) in [(1usize, 0usize), (3, 2), (100, 1)] {
        let page = execute(
            &s,
            &format!(
                "SELECT ?x ?y WHERE {{ ?x <{p}> ?y }} ORDER BY ?x ?y LIMIT {limit} OFFSET {offset}"
            ),
        )
        .unwrap();
        let expected: Vec<_> = all
            .rows()
            .iter()
            .skip(offset)
            .take(limit)
            .cloned()
            .collect();
        assert_eq!(page.rows(), &expected[..], "limit {limit} offset {offset}");
    }
}

#[test]
fn ask_agrees_with_select_emptiness() {
    let s = store();
    let p = a_predicate(&s);
    let non_empty = !execute(&s, &format!("SELECT ?x {{ ?x <{p}> ?y }} LIMIT 1"))
        .unwrap()
        .is_empty();
    assert_eq!(
        execute_ask(&s, &format!("ASK {{ ?x <{p}> ?y }}")).unwrap(),
        non_empty
    );
    assert!(!execute_ask(&s, "ASK { ?x <urn:no-such-predicate> ?y }").unwrap());
}
