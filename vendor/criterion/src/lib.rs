//! Minimal, dependency-free stand-in for `criterion` (0.5 API subset).
//!
//! Offline builds cannot fetch the real crate; this shim implements the
//! surface the `sofya-bench` benches use — `Criterion::bench_function`,
//! `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then timed batches
//! until a wall-clock budget is hit, reporting min / mean / max per
//! iteration. No statistics engine, no plots — but numbers are real and
//! the benches stay honest (`cargo bench` runs them; `cargo bench --no-run`
//! compiles them).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-benchmark measurement budget (after warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(60);

pub struct Criterion {
    /// Optional substring filter, taken from the CLI like the real crate.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` plus any user filter; everything that is
        // not a flag is treated as a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.filter.as_deref(), id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn final_summary(self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hints are accepted for API compatibility; the shim's
    /// budget-based loop ignores them.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.filter.as_deref(), &full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_one(self.criterion.filter.as_deref(), &full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(filter: Option<&str>, id: &str, mut f: F) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }

    // Warm-up: find an iteration count that fits the measurement budget.
    let mut iters: u64 = 1;
    let mut per_iter;
    loop {
        let mut b = Bencher {
            iterations: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.as_secs_f64() / iters as f64;
        if b.elapsed >= WARMUP_BUDGET || iters >= 1 << 30 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let batch = ((MEASURE_BUDGET.as_secs_f64() / 5.0 / per_iter.max(1e-9)) as u64).max(1);

    // Measurement: timed batches until the budget is spent.
    let mut samples: Vec<f64> = Vec::new();
    let started = Instant::now();
    while started.elapsed() < MEASURE_BUDGET || samples.is_empty() {
        let mut b = Bencher {
            iterations: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / batch as f64);
    }

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples x {batch} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a runner function that executes each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
