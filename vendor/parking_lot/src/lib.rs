//! Minimal stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Offline builds cannot fetch the real crate; SOFYA only needs a
//! `Mutex` whose `lock()` returns the guard directly (no poison
//! `Result`). Poisoning is swallowed by recovering the inner guard,
//! which matches parking_lot's "no poisoning" semantics closely enough
//! for the endpoint cache.

#![forbid(unsafe_code)]

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
