//! Collection strategies; only `vec` is needed.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `proptest::collection::vec(element, size_range)` — the size is drawn
/// uniformly from the half-open range, then that many elements are drawn.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.in_range(self.size.start as u64, self.size.end as u64) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
