//! Minimal, dependency-free stand-in for `proptest` (1.x API subset).
//!
//! Offline builds cannot fetch the real crate, so this shim implements the
//! surface SOFYA's property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//!   `boxed`, implemented for regex-literal `&str`, integer ranges, and
//!   tuples;
//! - [`collection::vec`] for sized vectors;
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! - [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design: generation is purely random
//! (no shrinking — a failing case prints its inputs instead), and string
//! "regexes" support the subset actually used in the tests (`.`, character
//! classes with ranges, `{n}` / `{m,n}` quantifiers, alternation-free
//! concatenation). Seeds are derived deterministically from the test name
//! so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Mirrors the real macro's grammar for the forms used in this workspace:
/// an optional `#![proptest_config(...)]` header followed by one or more
/// `fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let __inputs = format!(
                        concat!("case #{}: ", $(stringify!($arg), " = {:?}; ",)+),
                        __case, $(&$arg,)+
                    );
                    let __guard = $crate::test_runner::FailureReport::arm(__inputs);
                    { $body }
                    __guard.disarm();
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assertion macros. The real crate returns `Err` for shrinking; without
/// shrinking a panic is equivalent and keeps bodies plain blocks.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}
