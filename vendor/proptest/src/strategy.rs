//! The `Strategy` trait and its combinators — generation only, no
//! shrinking (the test loop prints failing inputs instead).

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejection-sampling filter. The real crate tracks a global rejection
    /// budget; here a per-draw retry cap keeps bad filters from hanging.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

// ------------------------------------------------------------- combinators

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Object-safe indirection so `prop_oneof!` can mix strategy types.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Equal-weight union over boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// ----------------------------------------------------- leaf strategy impls

/// Regex-literal string strategy (subset; see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty inclusive range");
                if hi == u64::MAX {
                    // Avoid overflow in the exclusive upper bound.
                    rng.next_u64() as $t
                } else {
                    rng.in_range(lo, hi + 1) as $t
                }
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range_i64(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        assert!(lo < hi, "empty char range");
        for _ in 0..64 {
            let v = rng.in_range(u64::from(lo), u64::from(hi)) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
        self.start
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        // `any::<bool>()` equivalent is not needed; a literal `bool` is
        // occasionally handy as a degenerate strategy in oneofs.
        let _ = rng;
        *self
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));
