//! Generation of strings from the regex subset the workspace's tests use:
//! concatenations of `.`, literal characters, and character classes
//! (`[a-z0-9:/._-]`, `[ -~]`, ...), each optionally quantified with
//! `{n}`, `{m,n}`, `?`, `*`, or `+`.
//!
//! `.` draws mostly printable ASCII but mixes in multi-byte code points so
//! Unicode handling is exercised the way the real crate would.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any character from the sample pool.
    Any,
    /// A single literal character.
    Literal(char),
    /// A character class: literal members plus inclusive ranges.
    Class {
        singles: Vec<char>,
        ranges: Vec<(char, char)>,
    },
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Sample pool for `.`: printable ASCII plus a few multi-byte characters
/// (Latin-1 supplement, Greek, CJK, an astral-plane emoji) in a ratio that
/// keeps most strings readable.
const UNICODE_EXTRAS: &[char] = &['é', 'ß', 'λ', 'Ω', 'ü', '日', '本', '→', '…', '🦀'];

pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            rng.in_range(piece.min as u64, piece.max as u64 + 1) as usize
        };
        for _ in 0..n {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Any => {
            // ~1 in 8 characters is non-ASCII.
            if rng.below(8) == 0 {
                UNICODE_EXTRAS[rng.below(UNICODE_EXTRAS.len())]
            } else {
                char::from(b' ' + rng.below(95) as u8)
            }
        }
        Atom::Literal(c) => *c,
        Atom::Class { singles, ranges } => {
            // Weight members by cardinality so wide ranges dominate.
            let range_card: usize = ranges
                .iter()
                .map(|&(lo, hi)| (hi as usize) - (lo as usize) + 1)
                .sum();
            let total = singles.len() + range_card;
            assert!(total > 0, "empty character class");
            let mut pick = rng.below(total);
            if pick < singles.len() {
                return singles[pick];
            }
            pick -= singles.len();
            for &(lo, hi) in ranges {
                let card = (hi as usize) - (lo as usize) + 1;
                if pick < card {
                    return char::from_u32(lo as u32 + pick as u32)
                        .expect("class range produced an invalid scalar");
                }
                pick -= card;
            }
            unreachable!("class sampling out of bounds")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                class
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(unescape(c))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    assert!(
        chars.get(i) != Some(&'^'),
        "negated classes are not supported by the proptest shim: {pattern:?}"
    );
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in class: {pattern:?}")),
            )
        } else {
            chars[i]
        };
        i += 1;
        // `X-Y` is a range unless the `-` is last in the class (then it is
        // a literal member, like the `-` in `[a-z0-9:/._-]`).
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let hi = if chars[i + 1] == '\\' {
                i += 1;
                unescape(
                    *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in class: {pattern:?}")),
                )
            } else {
                chars[i + 1]
            };
            assert!(c <= hi, "inverted class range {c:?}-{hi:?} in {pattern:?}");
            ranges.push((c, hi));
            i += 2;
        } else {
            singles.push(c);
        }
    }
    assert!(
        chars.get(i) == Some(&']'),
        "unterminated character class in {pattern:?}"
    );
    (Atom::Class { singles, ranges }, i + 1)
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use crate::test_runner::TestRng;

    fn gen_many(pattern: &str, n: usize) -> Vec<String> {
        let mut rng = TestRng::deterministic(pattern);
        (0..n)
            .map(|_| generate_from_pattern(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn dot_quantified_respects_length() {
        for s in gen_many(".{0,24}", 200) {
            assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn class_with_trailing_dash_is_literal() {
        for s in gen_many("[a-z0-9:/._-]{1,10}", 300) {
            for c in s.chars() {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || ":/._-".contains(c),
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn space_to_tilde_range() {
        for s in gen_many("[ -~]{1,8}", 300) {
            for c in s.chars() {
                assert!((' '..='~').contains(&c), "outside printable ASCII: {c:?}");
            }
        }
    }

    #[test]
    fn fixed_count_is_exact() {
        for s in gen_many("[a-z]{2}", 100) {
            assert_eq!(s.chars().count(), 2);
        }
    }

    #[test]
    fn concatenation_of_pieces() {
        for s in gen_many("[a-z][a-z0-9]{0,3}", 200) {
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().count() <= 4);
        }
    }

    #[test]
    fn dot_mixes_in_unicode() {
        let all: String = gen_many(".{0,24}", 400).concat();
        assert!(!all.is_ascii(), "expected some non-ASCII output from `.`");
    }
}
