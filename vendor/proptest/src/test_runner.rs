//! Test-loop plumbing: configuration, the deterministic RNG, and the
//! failure reporter that substitutes for shrinking.

/// Subset of the real `ProptestConfig`: only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 128 keeps the heavier differential
        // suites fast while still exploring a wide input space.
        ProptestConfig { cases: 128 }
    }
}

/// The workspace's vendored `rand::rngs::StdRng`, seeded from a SplitMix64
/// expansion of the test name's FNV-1a hash — every test gets its own
/// reproducible stream. Wrapping the shared generator (instead of copying
/// its core) keeps exactly one RNG implementation in the workspace.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn deterministic(test_name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seed_from_u64(h)
    }

    pub fn seed_from_u64(state: u64) -> Self {
        use rand::SeedableRng;
        TestRng {
            inner: rand::rngs::StdRng::seed_from_u64(state),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)` (works for any integer width the
    /// strategies need after casting).
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "in_range: empty range");
        lo + self.next_u64() % (hi - lo)
    }

    pub fn in_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "in_range_i64: empty range");
        let span = (hi as i128 - lo as i128) as u128;
        (lo as i128 + (self.next_u64() as u128 % span) as i128) as i64
    }
}

/// Prints the generated inputs if the test body panics — the no-shrink
/// substitute for proptest's minimal failing case.
pub struct FailureReport {
    inputs: Option<String>,
}

impl FailureReport {
    pub fn arm(inputs: String) -> Self {
        FailureReport {
            inputs: Some(inputs),
        }
    }

    pub fn disarm(mut self) {
        self.inputs = None;
    }
}

impl Drop for FailureReport {
    fn drop(&mut self) {
        if let Some(inputs) = &self.inputs {
            if std::thread::panicking() {
                eprintln!("proptest shim: failing inputs -> {inputs}");
            }
        }
    }
}
