//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment is fully offline, so the workspace vendors the
//! exact surface SOFYA uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is exactly what the seeded KB generator and the
//! evaluation harness rely on.

#![forbid(unsafe_code)]

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point. Only `seed_from_u64` is provided; SOFYA never
/// seeds from byte arrays.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like the real crate does.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw. Panics outside `[0, 1]` like the real crate.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p = {p} is outside [0, 1]"
        );
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and more than good enough for synthetic
    /// KB generation. Not cryptographic (neither is the real `StdRng`'s
    /// contract: only reproducibility per version is promised).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    pub mod uniform {
        use crate::RngCore;

        /// The range-argument trait behind `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u128).wrapping_sub(self.start as u128);
                        self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty inclusive range");
                        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                        lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

pub mod seq {
    use crate::Rng;

    /// Slice helpers; only `shuffle` is used by SOFYA.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            // Fisher–Yates, matching the real crate's semantics.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious bias: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
